// Package scenario loads user-authored JSON descriptions of a system and
// workload, turning them into runnable simulations — the front door for
// users who want to explore configurations beyond the paper's experiments
// without writing Go.
//
// A scenario file has three sections:
//
//	{
//	  "system": {
//	    "meshW": 8, "meshH": 8, "nodesPerRack": 8,
//	    "scheme": "vcsel",
//	    "minRateGbps": 5, "maxRateGbps": 10, "levels": 6,
//	    "powerAware": true,
//	    "window": 1000, "slidingN": 4, "avgThreshold": 0.5
//	  },
//	  "workload": { "type": "uniform", "rate": 2.0, "packetFlits": 5 },
//	  "run": { "warmup": 10000, "measure": 100000 }
//	}
//
// Every field has a sensible default (the paper's configuration); an empty
// scenario {} runs the paper's system under light uniform traffic.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/linkmodel"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/powerlink"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// System is the JSON-facing system description.
type System struct {
	MeshW        int     `json:"meshW"`
	MeshH        int     `json:"meshH"`
	NodesPerRack int     `json:"nodesPerRack"`
	VCs          int     `json:"vcs"`
	BufDepth     int     `json:"bufDepth"`
	Routing      string  `json:"routing"` // "xy" (default) or "yx"
	Scheme       string  `json:"scheme"`  // "vcsel" (default) or "modulator"
	MinRateGbps  float64 `json:"minRateGbps"`
	MaxRateGbps  float64 `json:"maxRateGbps"`
	Levels       int     `json:"levels"`
	TbrCycles    int64   `json:"tbr"`
	TvCycles     int64   `json:"tv"`
	// PowerAware defaults to true; use a pointer so `false` is expressible.
	PowerAware *bool `json:"powerAware"`
	// NodeLinksPowerAware defaults to true.
	NodeLinksPowerAware *bool `json:"nodeLinksPowerAware"`
	// OpticalLevels enables the paper's three optical power levels
	// (modulator scheme only).
	OpticalLevels bool `json:"opticalLevels"`

	Window       int64   `json:"window"`
	SlidingN     int     `json:"slidingN"`
	AvgThreshold float64 `json:"avgThreshold"` // 0 = Table 1 defaults
	Predictor    string  `json:"predictor"`    // "sliding" (default) or "ewma"
	EWMAAlpha    float64 `json:"ewmaAlpha"`

	// Shards is the parallel-simulation shard count (0/1 = sequential;
	// otherwise must divide MeshW). Output is byte-identical either way.
	Shards int `json:"shards"`

	Seed uint64 `json:"seed"`
}

// Fault is the JSON-facing fault-injection description. The zero value
// injects nothing; enabling any class also wires the link-level
// retransmission protocol (at its defaults).
type Fault struct {
	// BERScale multiplies each link's margin-derived bit error rate.
	BERScale float64 `json:"berScale"`
	// BERFloor is a minimum per-bit error rate on every link.
	BERFloor float64 `json:"berFloor"`
	// RelockFailProb is the CDR relock failure probability on rate switches.
	RelockFailProb float64 `json:"relockFailProb"`
	// ExtraPathLossDB erodes every link's optical margin so the
	// margin-derived BER becomes rate-dependent (higher levels visibly
	// lossier) instead of vanishing under the default ~23 dB of slack.
	// Meaningful together with BERScale.
	ExtraPathLossDB float64 `json:"extraPathLossDB"`
	// LinkFailures schedules hard failure/repair windows.
	LinkFailures []LinkFailure `json:"linkFailures"`
	// Recovery enables fault-aware routing, the escape network, and the
	// stall watchdog (at their defaults).
	Recovery bool `json:"recovery"`
}

// LinkFailure is one scheduled hard link failure window.
type LinkFailure struct {
	Link     int   `json:"link"`
	At       int64 `json:"at"`
	RepairAt int64 `json:"repairAt"`
}

// Workload is the JSON-facing workload description.
type Workload struct {
	// Type: "uniform" (default), "hotspot", "splash", or "trace".
	Type string `json:"type"`
	// Rate is the network-wide injection rate in packets/cycle (uniform).
	Rate        float64 `json:"rate"`
	PacketFlits int     `json:"packetFlits"`

	// Hotspot fields.
	Phases    []Phase `json:"phases"`
	HotNode   int     `json:"hotNode"`
	HotWeight float64 `json:"hotWeight"`

	// Splash fields.
	Bench string `json:"bench"` // fft, lu, radix

	// Trace playback.
	TraceFile string `json:"traceFile"`
}

// Phase is one hotspot schedule segment.
type Phase struct {
	Until int64   `json:"until"`
	Rate  float64 `json:"rate"`
}

// Run controls the measurement protocol.
type Run struct {
	Warmup  int64 `json:"warmup"`
	Measure int64 `json:"measure"`
	// Series switches to time-series mode with the given bucket.
	Series bool  `json:"series"`
	Bucket int64 `json:"bucket"`
}

// Policy is the JSON-facing adaptive-policy description. The zero value
// keeps the history-window DVS controller with the system section's
// window/threshold knobs, exactly as before the section existed.
type Policy struct {
	// Kind: "dvs" (default), "rules", or "pid". The oracle-replay kind
	// needs a recorded schedule and is only reachable programmatically.
	Kind string `json:"kind"`
	// MaxBER enables the reliability guard (and the rule engine's
	// projected-BER rule) when positive.
	MaxBER float64 `json:"maxBER"`

	// Rule-engine knobs (kind "rules"); zero values take the defaults.
	LossHigh       float64 `json:"lossHigh"`
	LossLow        float64 `json:"lossLow"`
	StormRelocks   int64   `json:"stormRelocks"`
	SafeLevel      int     `json:"safeLevel"`
	HoldCycles     int64   `json:"holdCycles"`
	RecoverWindows int     `json:"recoverWindows"`

	// PID knobs (kind "pid"); zero values take the defaults.
	Setpoint      float64 `json:"setpoint"`
	Kp            float64 `json:"kp"`
	Ki            float64 `json:"ki"`
	Kd            float64 `json:"kd"`
	IntegralClamp float64 `json:"integralClamp"`
	StepThreshold float64 `json:"stepThreshold"`
}

// Scenario is a complete scenario file.
type Scenario struct {
	System   System   `json:"system"`
	Workload Workload `json:"workload"`
	Fault    Fault    `json:"fault"`
	Policy   Policy   `json:"policy"`
	Run      Run      `json:"run"`
}

// Load parses a scenario from JSON, rejecting unknown fields so typos
// surface instead of silently running the defaults.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// LoadFile loads a scenario from a file path.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func defaulted[T comparable](v, def T) T {
	var zero T
	if v == zero {
		return def
	}
	return v
}

// NetworkConfig resolves the system section to a network.Config.
func (s *Scenario) NetworkConfig() (network.Config, error) {
	cfg := network.DefaultConfig()
	sys := s.System
	cfg.MeshW = defaulted(sys.MeshW, cfg.MeshW)
	cfg.MeshH = defaulted(sys.MeshH, cfg.MeshH)
	cfg.NodesPerRack = defaulted(sys.NodesPerRack, cfg.NodesPerRack)
	cfg.VCs = defaulted(sys.VCs, cfg.VCs)
	cfg.BufDepth = defaulted(sys.BufDepth, cfg.BufDepth)
	cfg.Seed = defaulted(sys.Seed, cfg.Seed)

	switch sys.Routing {
	case "", "xy":
		cfg.Routing = network.RoutingXY
	case "yx":
		cfg.Routing = network.RoutingYX
	case "westfirst":
		cfg.Routing = network.RoutingWestFirst
	default:
		return cfg, fmt.Errorf("scenario: unknown routing %q", sys.Routing)
	}

	switch sys.Scheme {
	case "", "vcsel":
		cfg.Link.Scheme = linkmodel.SchemeVCSEL
	case "modulator":
		cfg.Link.Scheme = linkmodel.SchemeModulator
	default:
		return cfg, fmt.Errorf("scenario: unknown scheme %q", sys.Scheme)
	}

	min := defaulted(sys.MinRateGbps, 5.0)
	max := defaulted(sys.MaxRateGbps, 10.0)
	levels := defaulted(sys.Levels, 6)
	if levels == 1 {
		cfg.Link.LevelRates = []float64{max}
	} else {
		if min >= max {
			return cfg, fmt.Errorf("scenario: minRateGbps %g must be below maxRateGbps %g", min, max)
		}
		cfg.Link.LevelRates = powerlink.Levels(min, max, levels)
	}
	cfg.Link.Tbr = sim.Cycle(defaulted(sys.TbrCycles, 20))
	cfg.Link.Tv = sim.Cycle(defaulted(sys.TvCycles, 100))

	if sys.PowerAware != nil {
		cfg.PowerAware = *sys.PowerAware
	}
	if sys.NodeLinksPowerAware != nil {
		cfg.NodeLinksPowerAware = *sys.NodeLinksPowerAware
	}
	if sys.OpticalLevels {
		if cfg.Link.Scheme != linkmodel.SchemeModulator {
			return cfg, fmt.Errorf("scenario: opticalLevels requires the modulator scheme")
		}
		opt := powerlink.PaperOpticalLevels(cfg.Link.Params.ModInputOpticalW)
		cfg.Link.Optical = &opt
		cfg.Policy.LaserEpoch = sim.CyclesFromMicros(200)
	}

	cfg.Policy.Window = sim.Cycle(defaulted(sys.Window, 1000))
	cfg.Policy.SlidingN = defaulted(sys.SlidingN, cfg.Policy.SlidingN)
	if sys.AvgThreshold != 0 {
		cfg.Policy.Thresholds = policy.ThresholdsAround(sys.AvgThreshold)
	}
	switch sys.Predictor {
	case "", "sliding":
		cfg.Policy.Predictor = policy.PredictSlidingAvg
	case "ewma":
		cfg.Policy.Predictor = policy.PredictEWMA
		cfg.Policy.EWMAAlpha = defaulted(sys.EWMAAlpha, 0.5)
	default:
		return cfg, fmt.Errorf("scenario: unknown predictor %q", sys.Predictor)
	}

	pol := s.Policy
	kind, err := policy.ParseKind(pol.Kind)
	if err != nil {
		return cfg, err
	}
	cfg.Policy.Kind = kind
	cfg.Policy.MaxBER = pol.MaxBER
	if kind == policy.KindRules {
		rc := policy.DefaultRulesConfig()
		rc.LossHigh = defaulted(pol.LossHigh, rc.LossHigh)
		rc.LossLow = defaulted(pol.LossLow, rc.LossLow)
		rc.StormRelocks = defaulted(pol.StormRelocks, rc.StormRelocks)
		rc.SafeLevel = defaulted(pol.SafeLevel, rc.SafeLevel)
		rc.HoldCycles = sim.Cycle(defaulted(pol.HoldCycles, int64(rc.HoldCycles)))
		rc.RecoverWindows = defaulted(pol.RecoverWindows, rc.RecoverWindows)
		cfg.Policy.Rules = rc
	}
	if kind == policy.KindPID {
		pc := policy.DefaultPIDConfig()
		pc.Setpoint = defaulted(pol.Setpoint, pc.Setpoint)
		pc.Kp = defaulted(pol.Kp, pc.Kp)
		pc.Ki = defaulted(pol.Ki, pc.Ki)
		pc.Kd = defaulted(pol.Kd, pc.Kd)
		pc.IntegralClamp = defaulted(pol.IntegralClamp, pc.IntegralClamp)
		pc.StepThreshold = defaulted(pol.StepThreshold, pc.StepThreshold)
		cfg.Policy.PID = pc
	}

	cfg.Shards = sys.Shards
	ft := s.Fault
	if ft.ExtraPathLossDB < 0 {
		return cfg, fmt.Errorf("scenario: negative extraPathLossDB %g", ft.ExtraPathLossDB)
	}
	cfg.Link.PathLossDB += ft.ExtraPathLossDB
	cfg.Fault.BERScale = ft.BERScale
	cfg.Fault.BERFloor = ft.BERFloor
	cfg.Fault.RelockFailProb = ft.RelockFailProb
	for _, lf := range ft.LinkFailures {
		cfg.Fault.LinkFailures = append(cfg.Fault.LinkFailures, fault.LinkFailure{
			Link: lf.Link, At: sim.Cycle(lf.At), RepairAt: sim.Cycle(lf.RepairAt),
		})
	}
	if ft.Recovery {
		cfg.Recovery = network.RecoveryConfig{Enabled: true}
	}
	return cfg, cfg.Validate()
}

// Validate resolves every section of the scenario — system, workload,
// fault, policy, run — without building a network, so a malformed file
// fails upfront (before a supervisor or search fleet spawns any worker
// subprocess) instead of surfacing from inside a crashed worker.
func (s *Scenario) Validate() error {
	cfg, err := s.NetworkConfig()
	if err != nil {
		return err
	}
	if _, err := s.Generator(cfg); err != nil {
		return err
	}
	if s.Run.Warmup < 0 || s.Run.Measure < 0 {
		return fmt.Errorf("scenario: negative run window (warmup %d, measure %d)", s.Run.Warmup, s.Run.Measure)
	}
	if s.Run.Series && s.Run.Bucket < 0 {
		return fmt.Errorf("scenario: negative series bucket %d", s.Run.Bucket)
	}
	return nil
}

// NewSystem resolves the scenario into a runnable system plus its warmup
// and measure windows — the building blocks Execute assembles, exposed so a
// checkpointing supervisor can drive the run in resumable slices.
func (s *Scenario) NewSystem() (*core.System, sim.Cycle, sim.Cycle, error) {
	cfg, err := s.NetworkConfig()
	if err != nil {
		return nil, 0, 0, err
	}
	gen, err := s.Generator(cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	sys, err := core.NewSystem(cfg, gen)
	if err != nil {
		return nil, 0, 0, err
	}
	return sys, sim.Cycle(s.Run.Warmup), sim.Cycle(defaulted(s.Run.Measure, 100_000)), nil
}

// Generator resolves the workload section against the system config.
func (s *Scenario) Generator(cfg network.Config) (traffic.Generator, error) {
	w := s.Workload
	size := defaulted(w.PacketFlits, 5)
	switch w.Type {
	case "", "uniform":
		rate := w.Rate
		if rate == 0 {
			rate = 0.004 * float64(cfg.Nodes()) // light default (~2 pkt/cyc at 512 nodes)
		}
		return traffic.NewUniform(cfg.Nodes(), rate, size), nil
	case "hotspot":
		if len(w.Phases) == 0 {
			return nil, fmt.Errorf("scenario: hotspot workload needs phases")
		}
		sched := make(traffic.Schedule, len(w.Phases))
		for i, p := range w.Phases {
			sched[i] = traffic.Phase{Until: sim.Cycle(p.Until), NetworkRate: p.Rate}
		}
		if err := sched.Validate(); err != nil {
			return nil, err
		}
		return &traffic.Hotspot{
			Nodes:     cfg.Nodes(),
			Phases:    sched,
			HotNode:   w.HotNode,
			HotWeight: defaulted(w.HotWeight, 4),
			Size:      size,
		}, nil
	case "splash":
		for _, b := range trace.Benchmarks() {
			if b.String() == w.Bench {
				length := sim.Cycle(s.Run.Warmup + s.Run.Measure)
				return trace.Generator(b, cfg.Nodes(), length), nil
			}
		}
		return nil, fmt.Errorf("scenario: unknown splash bench %q", w.Bench)
	case "trace":
		f, err := os.Open(w.TraceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := trace.Read(f)
		if err != nil {
			return nil, err
		}
		return trace.NewPlayback(recs, cfg.Nodes())
	default:
		return nil, fmt.Errorf("scenario: unknown workload type %q", w.Type)
	}
}

// Execute runs the scenario and returns the result (plus a time series in
// series mode).
func (s *Scenario) Execute() (core.Result, *core.TimeSeries, error) {
	cfg, err := s.NetworkConfig()
	if err != nil {
		return core.Result{}, nil, err
	}
	gen, err := s.Generator(cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	// Zero warmup is meaningful (time-series runs keep the transient), so
	// only the measure window has a default.
	warmup := sim.Cycle(s.Run.Warmup)
	measure := sim.Cycle(defaulted(s.Run.Measure, 100_000))
	if s.Run.Series {
		bucket := sim.Cycle(defaulted(s.Run.Bucket, 10_000))
		total := warmup + measure
		total -= total % bucket
		if total <= 0 {
			return core.Result{}, nil, fmt.Errorf("scenario: run too short for bucket %d", bucket)
		}
		r, ts, err := core.RunSeries(cfg, gen, total, bucket)
		return r, &ts, err
	}
	r, err := core.Run(cfg, gen, warmup, measure)
	return r, nil, err
}
