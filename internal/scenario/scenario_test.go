package scenario

import (
	"strings"
	"testing"

	"repro/internal/linkmodel"
	"repro/internal/network"
	"repro/internal/policy"
)

func mustLoad(t *testing.T, js string) *Scenario {
	t.Helper()
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyScenarioDefaults(t *testing.T) {
	s := mustLoad(t, `{}`)
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	def := network.DefaultConfig()
	if cfg.MeshW != def.MeshW || cfg.NodesPerRack != def.NodesPerRack {
		t.Errorf("empty scenario diverged from paper defaults: %+v", cfg)
	}
	if !cfg.PowerAware {
		t.Error("default must be power-aware")
	}
	if len(cfg.Link.LevelRates) != 6 || cfg.Link.LevelRates[0] != 5 {
		t.Errorf("level ladder %v", cfg.Link.LevelRates)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"sytem": {}}`)); err == nil {
		t.Error("typo'd field accepted")
	}
}

func TestSystemOverrides(t *testing.T) {
	s := mustLoad(t, `{"system": {
		"meshW": 4, "meshH": 2, "nodesPerRack": 8,
		"scheme": "modulator", "opticalLevels": true,
		"routing": "yx",
		"minRateGbps": 3.3, "maxRateGbps": 10, "levels": 6,
		"window": 500, "avgThreshold": 0.6,
		"predictor": "ewma", "ewmaAlpha": 0.4,
		"powerAware": true
	}}`)
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes() != 64 {
		t.Errorf("nodes = %d", cfg.Nodes())
	}
	if cfg.Link.Scheme != linkmodel.SchemeModulator || cfg.Link.Optical == nil {
		t.Error("modulator+optical not configured")
	}
	if cfg.Routing != network.RoutingYX {
		t.Error("routing override lost")
	}
	if cfg.Policy.Window != 500 || cfg.Policy.Predictor != policy.PredictEWMA || cfg.Policy.EWMAAlpha != 0.4 {
		t.Errorf("policy overrides lost: %+v", cfg.Policy)
	}
	if cfg.Policy.Thresholds.HighUncongested != 0.65 {
		t.Errorf("threshold override: %+v", cfg.Policy.Thresholds)
	}
	if cfg.Link.LevelRates[0] != 3.3 {
		t.Errorf("ladder %v", cfg.Link.LevelRates)
	}
}

func TestPowerAwareFalse(t *testing.T) {
	s := mustLoad(t, `{"system": {"powerAware": false}}`)
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PowerAware {
		t.Error("powerAware:false ignored")
	}
}

func TestBadScenarios(t *testing.T) {
	bad := []string{
		`{"system": {"scheme": "laser-pointer"}}`,
		`{"system": {"routing": "zigzag"}}`,
		`{"system": {"minRateGbps": 10, "maxRateGbps": 5}}`,
		`{"system": {"opticalLevels": true}}`, // vcsel + optical levels
		`{"system": {"predictor": "crystal-ball"}}`,
	}
	for _, js := range bad {
		s := mustLoad(t, js)
		if _, err := s.NetworkConfig(); err == nil {
			t.Errorf("accepted bad scenario %s", js)
		}
	}
	badW := []string{
		`{"workload": {"type": "chaos-monkey"}}`,
		`{"workload": {"type": "hotspot"}}`, // no phases
		`{"workload": {"type": "splash", "bench": "barnes"}}`,
		`{"workload": {"type": "trace", "traceFile": "/nonexistent.trc"}}`,
	}
	for _, js := range badW {
		s := mustLoad(t, js)
		cfg, err := s.NetworkConfig()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Generator(cfg); err == nil {
			t.Errorf("accepted bad workload %s", js)
		}
	}
}

func TestExecuteUniform(t *testing.T) {
	s := mustLoad(t, `{
		"system": {"meshW": 2, "meshH": 2, "nodesPerRack": 2},
		"workload": {"type": "uniform", "rate": 0.2},
		"run": {"warmup": 2000, "measure": 20000}
	}`)
	r, ts, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ts != nil {
		t.Error("non-series run returned a series")
	}
	if r.Packets == 0 || r.NormPower <= 0 {
		t.Errorf("degenerate result %+v", r)
	}
}

func TestExecuteSeriesHotspot(t *testing.T) {
	s := mustLoad(t, `{
		"system": {"meshW": 2, "meshH": 2, "nodesPerRack": 2},
		"workload": {"type": "hotspot",
			"phases": [{"until": 10000, "rate": 0.3}, {"until": 30000, "rate": 0.05}],
			"hotNode": 3, "hotWeight": 4},
		"run": {"warmup": 0, "measure": 30000, "series": true, "bucket": 5000}
	}`)
	r, ts, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ts == nil || len(ts.InjectionRate) != 6 {
		t.Fatalf("series missing or wrong length")
	}
	if r.Packets == 0 {
		t.Error("no packets")
	}
	// First bucket carries the heavy phase.
	if ts.InjectionRate[0].V < ts.InjectionRate[5].V {
		t.Error("schedule not reflected in series")
	}
}

func TestExecuteSplash(t *testing.T) {
	s := mustLoad(t, `{
		"system": {"meshW": 4, "meshH": 2, "scheme": "modulator"},
		"workload": {"type": "splash", "bench": "radix", "packetFlits": 48},
		"run": {"warmup": 0, "measure": 60000}
	}`)
	r, _, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets == 0 {
		t.Error("splash scenario delivered nothing")
	}
}

func TestWestFirstScenario(t *testing.T) {
	s := mustLoad(t, `{"system": {"routing": "westfirst", "meshW": 2, "meshH": 2, "nodesPerRack": 2},
		"run": {"warmup": 1000, "measure": 10000}}`)
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Routing != network.RoutingWestFirst {
		t.Error("westfirst routing not configured")
	}
	r, _, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets == 0 {
		t.Error("no packets under west-first scenario")
	}
}
