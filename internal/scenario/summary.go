package scenario

import (
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
)

// Summarize renders the full report.Summary for a finished run: the
// headline numbers plus the fault, recovery, policy (with the regret
// oracle when a trace was recorded) and telemetry blocks when those layers
// ran. It is the one summary-building path, shared by the optorun worker
// and the DSE trial evaluators, so an in-process trial and a subprocess
// trial of the same scenario produce byte-identical summaries.
func Summarize(name string, sys *core.System, res core.Result) report.Summary {
	cfg := sys.Config()
	n := sys.Net
	lv, off := n.LevelHistogram()
	hist := make([]int64, len(lv))
	for i, v := range lv {
		hist[i] = int64(v)
	}
	sum := report.Summary{
		Experiment:     name,
		Seed:           cfg.Seed,
		MeanLatency:    res.MeanLatencyCycles,
		NormPower:      res.NormPower,
		EnergyJ:        res.EnergyJ,
		Delivered:      n.DeliveredPackets(),
		Dropped:        n.DroppedPackets(),
		DeliveredFlits: n.DeliveredFlits(),
		LevelHistogram: hist,
		OffLinks:       off,
		TimeAtLevel:    n.TimeAtLevelHistogram(),
	}
	if cfg.Fault.Enabled() {
		rel := n.FaultStats()
		sum.Reliability = &rel
	}
	if cfg.Recovery.Enabled {
		rec := n.RecoveryStats()
		sum.Recovery = &rec
	}
	if ps := n.PolicyStats(); ps.Windows > 0 {
		if tr := n.PolicyTrace(); tr != nil {
			if o, err := policy.ComputeOracle(*tr, n.ControlledLinkModels()); err == nil {
				ps.SetOracle(o.EnergyJ)
			}
		}
		sum.Policy = &ps
	}
	if cfg.Telemetry.Enabled {
		d := n.Telemetry().Digest()
		sum.Telemetry = &d
	}
	return sum
}
