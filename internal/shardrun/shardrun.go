// Package shardrun is the sanctioned concurrency substrate of the sharded
// simulation core (DESIGN.md §6g). It is the ONLY sim-core package allowed
// to start goroutines (optolint's determinism rule carries an explicit
// allowlist for it), and it provides exactly two primitives:
//
//   - Pool: a fixed set of persistent workers that execute one task per
//     shard and barrier before returning. Determinism survives because the
//     barrier is total — Run returns only after every task has finished —
//     and because tasks touch pairwise-disjoint state; the OS scheduler's
//     interleaving is therefore unobservable.
//   - Ring: a single-producer/single-consumer ring buffer used for the
//     boundary crossings (flits traversing an inter-shard channel) where
//     one shard writes during a window and the other reads in a later
//     window or event.
//
// Neither primitive consults time, randomness, or iteration order of maps,
// keeping the package inside the determinism envelope.
package shardrun

import (
	"sync"
	"sync/atomic"
)

type task struct {
	f  func()
	wg *sync.WaitGroup
}

// Pool runs batches of tasks on persistent worker goroutines. Workers block
// on a channel receive between batches — no spinning — so an idle pool
// costs nothing but memory.
type Pool struct {
	tasks  chan task
	closed bool
}

// NewPool starts n persistent workers. n must be >= 1; callers that want a
// degenerate single-shard run should skip the pool entirely and execute
// inline.
func NewPool(n int) *Pool {
	if n < 1 {
		panic("shardrun: pool needs at least one worker")
	}
	p := &Pool{tasks: make(chan task)}
	for i := 0; i < n; i++ {
		go func() {
			for t := range p.tasks {
				t.f()
				t.wg.Done()
			}
		}()
	}
	return p
}

// Run executes every task and returns once all have completed (a full
// barrier). The first task runs inline on the caller — with K shards and
// K-1 workers every shard gets a thread, and on a single-core host the
// inline task avoids one context switch per cycle.
func (p *Pool) Run(tasks []func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks) - 1)
	for _, f := range tasks[1:] {
		p.tasks <- task{f: f, wg: &wg}
	}
	tasks[0]()
	wg.Wait()
}

// Close terminates the workers. The pool must be idle (no Run in flight);
// Run must not be called after Close. Idempotent.
func (p *Pool) Close() {
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// Ring is a fixed-capacity single-producer/single-consumer ring buffer.
// Exactly one goroutine may Push and one may Pop concurrently; head and
// tail are separate atomics so the two sides never write the same word
// (the failure mode of a naive shared-count ring under sharding). Overflow
// and underflow panic: in the simulator both indicate a scheduling bug, not
// a load condition, and must not be absorbed silently.
type Ring[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // next slot to Pop (consumer-owned)
	tail atomic.Uint64 // next slot to Push (producer-owned)
}

// NewRing returns a ring holding at least capacity elements (rounded up to
// a power of two).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push appends v; panics when the ring is full.
func (r *Ring[T]) Push(v T) {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		panic("shardrun: ring overflow")
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
}

// Pop removes and returns the oldest element; panics when the ring is
// empty.
func (r *Ring[T]) Pop() T {
	h := r.head.Load()
	if h == r.tail.Load() {
		panic("shardrun: ring underflow")
	}
	v := r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero // drop references for the GC
	r.head.Store(h + 1)
	return v
}

// Len returns the number of buffered elements. Only consistent when called
// from one of the two endpoint goroutines or under an external barrier.
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }
