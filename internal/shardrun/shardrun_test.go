package shardrun

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTaskAndBarriers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var ran [8]atomic.Bool
	tasks := make([]func(), len(ran))
	for i := range tasks {
		i := i
		tasks[i] = func() { ran[i].Store(true) }
	}
	p.Run(tasks)
	// Run is a full barrier: every task must be visibly done on return.
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("task %d had not completed when Run returned", i)
		}
	}
}

func TestPoolSingleTaskRunsInline(t *testing.T) {
	// A one-task batch must not touch the workers at all, so it works even
	// on a closed pool.
	p := NewPool(1)
	p.Close()
	ran := false
	p.Run([]func(){func() { ran = true }})
	if !ran {
		t.Error("single task did not run")
	}
	p.Run(nil) // empty batch is a no-op
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // second close must not panic on the closed channel
}

func TestPoolRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	for round := 0; round < 3; round++ { // wrap the buffer a few times
		for i := 0; i < 4; i++ {
			r.Push(round*4 + i)
		}
		if r.Len() != 4 {
			t.Fatalf("Len = %d after 4 pushes, want 4", r.Len())
		}
		for i := 0; i < 4; i++ {
			if got := r.Pop(); got != round*4+i {
				t.Fatalf("Pop = %d, want %d", got, round*4+i)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("Len = %d after drain, want 0", r.Len())
		}
	}
}

func TestRingCapacityRoundsUp(t *testing.T) {
	r := NewRing[int](5) // rounds up to 8
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	if r.Len() != 8 {
		t.Errorf("ring holds %d, want rounded-up capacity 8", r.Len())
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	defer func() {
		if recover() == nil {
			t.Error("push into a full ring did not panic")
		}
	}()
	r.Push(3)
}

func TestRingUnderflowPanics(t *testing.T) {
	r := NewRing[int](2)
	defer func() {
		if recover() == nil {
			t.Error("pop from an empty ring did not panic")
		}
	}()
	r.Pop()
}

func TestRingDropsReferences(t *testing.T) {
	// Pop must zero the vacated slot so the ring does not pin packet memory.
	r := NewRing[*int](2)
	v := 42
	r.Push(&v)
	r.Pop()
	if r.buf[0] != nil {
		t.Error("Pop left a live reference in the buffer")
	}
}
