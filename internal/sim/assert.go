//go:build simdebug

package sim

import "fmt"

// Debug is true in -tags simdebug builds. Assertion sites throughout
// sim-core guard on it (`if sim.Debug { sim.Assertf(...) }`), so in normal
// builds the constant-false branch — and every assertion expression behind
// it — compiles away entirely.
const Debug = true

// Assertf panics with the formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("simdebug: " + fmt.Sprintf(format, args...))
	}
}
