//go:build !simdebug

package sim

// Debug is false in normal builds: every `if sim.Debug { ... }` assertion
// block is dead code the compiler eliminates. Build with -tags simdebug to
// turn the runtime assertion layer on.
const Debug = false

// Assertf is a no-op in normal builds; see the simdebug variant.
func Assertf(cond bool, format string, args ...any) {}
