//go:build simdebug

package sim

import "testing"

// These tests only exist under -tags simdebug: they prove the assertion
// layer actually fires, so a CI chaos run passing with the tag on means the
// invariants were checked, not skipped.

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected a simdebug panic")
		}
	}()
	f()
}

func TestSkipToOverEventPanics(t *testing.T) {
	w := NewWheel(64)
	w.Schedule(5, func(Cycle) {})
	mustPanic(t, func() { w.SkipTo(10) })
}

func TestSkipToUpToEventIsLegal(t *testing.T) {
	w := NewWheel(64)
	w.Schedule(5, func(Cycle) {})
	w.SkipTo(4) // the event is still in the future; no panic
	w.Advance(5)
}

func TestAdvanceOverEventPanics(t *testing.T) {
	w := NewWheel(64)
	w.Schedule(3, func(Cycle) {})
	mustPanic(t, func() { w.Advance(7) })
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	w := NewWheel(64)
	w.Advance(9)
	mustPanic(t, func() { w.Advance(4) })
}

func TestAssertfFormatsMessage(t *testing.T) {
	defer func() {
		if r := recover(); r != "simdebug: credit 9 > depth 8" {
			t.Fatalf("got %v", r)
		}
	}()
	Assertf(false, "credit %d > depth %d", 9, 8)
}
