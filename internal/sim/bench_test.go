package sim

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}

func BenchmarkWheelScheduleAdvance(b *testing.B) {
	w := NewWheel(4096)
	nop := Event(func(Cycle) {})
	for i := 0; i < b.N; i++ {
		now := Cycle(i)
		w.Schedule(now+3, nop)
		w.Advance(now)
	}
}

// BenchmarkWheelAdvanceIdle pins the cost of advancing one event-free
// cycle — the operation fast-forward exists to avoid.
func BenchmarkWheelAdvanceIdle(b *testing.B) {
	w := NewWheel(4096)
	// One far event beyond the horizon keeps the far-heap peek honest.
	w.Schedule(Cycle(b.N)+10_000, func(Cycle) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Advance(Cycle(i))
	}
}

// BenchmarkWheelNextEventAt measures the bitmap scan on a sparse wheel.
func BenchmarkWheelNextEventAt(b *testing.B) {
	w := NewWheel(4096)
	w.Advance(0)
	w.Schedule(4000, func(Cycle) {}) // near the end of the scan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.NextEventAt(); !ok {
			b.Fatal("event lost")
		}
	}
}

func BenchmarkWheelFarEvents(b *testing.B) {
	w := NewWheel(64)
	nop := Event(func(Cycle) {})
	for i := 0; i < b.N; i++ {
		now := Cycle(i)
		w.Schedule(now+10_000, nop) // always beyond the horizon
		w.Advance(now)
	}
}
