package sim

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}

func BenchmarkWheelScheduleAdvance(b *testing.B) {
	w := NewWheel(4096)
	nop := Event(func(Cycle) {})
	for i := 0; i < b.N; i++ {
		now := Cycle(i)
		w.Schedule(now+3, nop)
		w.Advance(now)
	}
}

func BenchmarkWheelFarEvents(b *testing.B) {
	w := NewWheel(64)
	nop := Event(func(Cycle) {})
	for i := 0; i < b.N; i++ {
		now := Cycle(i)
		w.Schedule(now+10_000, nop) // always beyond the horizon
		w.Advance(now)
	}
}
