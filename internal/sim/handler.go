package sim

// Checkpoint handler descriptors. Wheel entries hold closures, which cannot
// be serialized; instead every event the network engine schedules carries a
// 64-bit descriptor naming the handler behind the closure:
//
//	kind(8 bits) << 56 | obj(32 bits) << 16 | param(16 bits)
//
// obj identifies the owning object (router id, global link index, node,
// telemetry registration ordinal) and param a sub-resource (input-VC index,
// output port, mesh direction). On restore the network resolves each
// descriptor back to the equivalent closure on the rebuilt object graph.
// Descriptor 0 is reserved for "not snapshotable" (legacy schedule paths);
// a wheel holding such entries refuses to export.

// Handler kinds. The namespace is flat across subsystems so one wheel's
// entries are unambiguous.
const (
	HChanDeliver  uint8 = 1  // channel delivery (obj = global link index)
	HChanAccept   uint8 = 2  // reliable rx-accept pipeline register
	HChanFeedback uint8 = 3  // reliable ACK/NACK feedback
	HChanPump     uint8 = 4  // go-back-N replay pump
	HChanWatchdog uint8 = 5  // retransmit watchdog
	HRouterHOL    uint8 = 6  // HOL re-registration (obj = router, param = input VC)
	HRouterCredit uint8 = 7  // upstream credit return (obj = router, param = input VC)
	HRouterWake   uint8 = 8  // output wake poll (obj = router, param = port)
	HNICWake      uint8 = 9  // NIC injection wake (obj = node)
	HRecRefresh   uint8 = 10 // recovery liveness refresh (obj = router, param = dir)
	HRecScan      uint8 = 11 // recovery stall-watchdog scan
	HTelemSample  uint8 = 12 // telemetry sampler tick
	HTelemMarker  uint8 = 13 // telemetry scheduled marker (obj = ordinal)
	HPolicyTimer  uint8 = 14 // policy hold/backoff timer (obj = controller ordinal)
)

// HandlerID packs a handler descriptor.
func HandlerID(kind uint8, obj uint32, param uint16) uint64 {
	return uint64(kind)<<56 | uint64(obj)<<16 | uint64(param)
}

// HandlerKind extracts the kind field of a descriptor.
func HandlerKind(id uint64) uint8 { return uint8(id >> 56) }

// HandlerObj extracts the obj field of a descriptor.
func HandlerObj(id uint64) uint32 { return uint32(id >> 16) }

// HandlerParam extracts the param field of a descriptor.
func HandlerParam(id uint64) uint16 { return uint16(id) }
