package sim

// Actor keys order a cycle's events canonically in the sharded engine
// (Wheel.BeginCycle). A key packs two 20-bit identifiers:
//
//   - owner: the actor whose state the event mutates. The shard that owns
//     this actor — and only that shard — executes the event.
//   - src: the actor (or channel) whose machinery schedules the event.
//
// The pair exists so that any two events with the SAME key are produced by
// a single deterministic execution context: their relative insertion order
// (the Seq tie-break) is then independent of the shard count. Owner 0 is
// reserved for the coordinator band — events the network runs sequentially
// before the parallel region (watchdog scans, liveness refreshes, telemetry
// samplers, markers); shard contexts must never schedule key 0.

// ActorSrcBits is the width of the src field in an actor key.
const ActorSrcBits = 20

// MaxActor is the largest representable actor/src identifier.
const MaxActor = 1<<ActorSrcBits - 1

// ActorKey packs (owner, src) into an ordering key. Both must fit in
// ActorSrcBits bits.
func ActorKey(owner, src uint32) uint64 {
	return uint64(owner)<<ActorSrcBits | uint64(src&MaxActor)
}

// KeyOwner extracts the owning actor from a key (0 = coordinator band).
func KeyOwner(key uint64) uint32 { return uint32(key >> ActorSrcBits) }
