package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift128+). Every stochastic decision in the simulator draws from an
// explicitly seeded RNG so that identical configurations produce identical
// results — a requirement for the A/B power comparisons between
// power-aware and non-power-aware runs.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero,
// yields a usable generator.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, which
// guarantees the internal state is never all-zero.
func (r *RNG) Seed(seed uint64) {
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator from this one. Useful for giving
// each traffic source its own stream while keeping the whole simulation a
// function of a single master seed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// RNGState is the exportable state of an RNG: the raw xorshift128+ words.
// It exists so checkpoints can persist and restore every stream mid-run;
// nothing outside checkpointing should touch it (optolint enforces this).
type RNGState struct {
	S0, S1 uint64
}

// State returns the generator's current internal state. The next draw after
// SetState(State()) is identical to the next draw without the round-trip.
func (r *RNG) State() RNGState {
	return RNGState{S0: r.s0, S1: r.s1}
}

// SetState overwrites the generator state. An all-zero state — which the
// xorshift128+ recurrence can never leave and which only a corrupted or
// forged checkpoint can contain — is normalized to a valid fixed state
// rather than wedging the generator at zero forever.
func (r *RNG) SetState(st RNGState) {
	if st.S0 == 0 && st.S1 == 0 {
		st.S1 = 1
	}
	r.s0, r.s1 = st.S0, st.S1
}

// Stream identifiers for the simulator's top-level derived RNG streams.
// Every stochastic subsystem draws from its own stream derived from the one
// scenario seed, so enabling one subsystem (e.g. fault injection) never
// perturbs the draws of another (traffic, routing): the whole simulation
// stays a function of (seed, configuration) with no cross-talk.
const (
	// StreamTraffic feeds the traffic generators. It is stream 0, which is
	// defined to be identical to NewRNG(seed), preserving the byte-exact
	// behaviour of every run recorded before streams existed.
	StreamTraffic uint64 = 0
	// StreamFault feeds the fault injector (which forks one sub-stream per
	// link from it).
	StreamFault uint64 = 1
	// StreamRouting is reserved for randomized routing decisions (none of
	// the current routing functions draw, but any future one must use it).
	StreamRouting uint64 = 2
	// StreamDSE feeds the design-space-exploration samplers (random, TPE,
	// successive halving). It is outside the per-run streams on purpose:
	// the search draws are a function of the *study* seed, so the trials a
	// study proposes never depend on — and never perturb — any single
	// trial's simulation draws.
	StreamDSE uint64 = 3
)

// NewStream returns a generator for the given (seed, stream) pair. Distinct
// streams from the same seed are statistically independent. Stream 0 is
// exactly NewRNG(seed), so seed-keyed behaviour that predates streams is a
// stream-0 draw and stays bit-identical.
func NewStream(seed, stream uint64) *RNG {
	if stream != 0 {
		s := stream ^ 0xd2b74407b1ce6e93
		seed ^= splitmix64(&s)
	}
	return NewRNG(seed)
}
