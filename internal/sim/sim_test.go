package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCycleSeconds(t *testing.T) {
	if got := Cycle(1).Seconds(); math.Abs(got-1.6e-9) > 1e-18 {
		t.Errorf("1 cycle = %g s, want 1.6e-9", got)
	}
	if got := Cycle(625_000_000).Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("625M cycles = %g s, want 1.0", got)
	}
}

func TestCycleMicros(t *testing.T) {
	if got := Cycle(625).Micros(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("625 cycles = %g µs, want 1.0", got)
	}
}

func TestCyclesFromMicros(t *testing.T) {
	cases := []struct {
		us   float64
		want Cycle
	}{
		{100, 62500},
		{200, 125000},
		{1.6e-3, 1},
	}
	for _, c := range cases {
		if got := CyclesFromMicros(c.us); got != c.want {
			t.Errorf("CyclesFromMicros(%g) = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestCyclesMicrosRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		c := Cycle(n)
		return CyclesFromMicros(c.Micros()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMilliBitsPerCycle(t *testing.T) {
	cases := []struct {
		gbps float64
		want int64
	}{
		{10, 16000}, // exactly one 16-bit flit per cycle
		{5, 8000},
		{3.3, 5280},
		{6, 9600},
	}
	for _, c := range cases {
		if got := MilliBitsPerCycle(c.gbps); got != c.want {
			t.Errorf("MilliBitsPerCycle(%g) = %d, want %d", c.gbps, got, c.want)
		}
	}
}

func TestMaxRateIsOneFlitPerCycle(t *testing.T) {
	if MilliBitsPerCycle(MaxBitRateGbps) != FlitMilliBits {
		t.Fatalf("at max rate a flit must serialise in exactly one cycle")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws in 100", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %g, want ≈0.5", mean)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(7) value %d drawn %d times in 70000, want ≈10000", v, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %g", p)
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Fork()
	// The child must be deterministic given the parent seed...
	parent2 := NewRNG(21)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("fork of identically seeded parents diverged")
		}
	}
}

func TestMilliBitsMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		ra := 1 + float64(a)/16 // 1..~17 Gb/s
		rb := 1 + float64(b)/16
		if ra > rb {
			ra, rb = rb, ra
		}
		return MilliBitsPerCycle(ra) <= MilliBitsPerCycle(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
