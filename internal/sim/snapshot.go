package sim

import (
	"container/heap"
	"fmt"
	"slices"
)

// WheelEntryState is one scheduled event in exportable form: its absolute
// fire cycle and its full ordering coordinates. The closure itself is
// replaced by the handler descriptor ID, which a restore resolves back to
// the rebuilt closure via the caller-supplied resolver.
type WheelEntryState struct {
	At  Cycle
	Key uint64
	Seq uint64
	ID  uint64
}

// WheelState is the complete exportable state of a Wheel.
type WheelState struct {
	Now     Cycle
	Seq     uint64 // insertion-sequence counter at snapshot time
	Entries []WheelEntryState
}

// ExportState captures every pending event with its absolute cycle and
// ordering coordinates, sorted by insertion sequence (a canonical total
// order: sequence numbers are globally unique). It fails if any entry
// carries handler ID 0, i.e. was scheduled through a legacy path that a
// checkpoint cannot reconstruct.
func (w *Wheel) ExportState() (WheelState, error) {
	st := WheelState{Now: w.now, Seq: w.seq}
	st.Entries = make([]WheelEntryState, 0, w.pending)
	for idx := range w.buckets {
		b := w.buckets[idx]
		if len(b) == 0 {
			continue
		}
		at := w.cycleFor(idx)
		for _, e := range b {
			if e.ID == 0 {
				return WheelState{}, fmt.Errorf("sim: wheel entry key=%#x seq=%d at=%d has no handler id; not snapshotable", e.Key, e.Seq, at)
			}
			st.Entries = append(st.Entries, WheelEntryState{At: at, Key: e.Key, Seq: e.Seq, ID: e.ID})
		}
	}
	for _, fe := range w.far {
		if fe.id == 0 {
			return WheelState{}, fmt.Errorf("sim: far wheel entry key=%#x seq=%d at=%d has no handler id; not snapshotable", fe.key, fe.seq, fe.at)
		}
		st.Entries = append(st.Entries, WheelEntryState{At: fe.at, Key: fe.key, Seq: fe.seq, ID: fe.id})
	}
	slices.SortFunc(st.Entries, func(a, b WheelEntryState) int {
		if a.Seq < b.Seq {
			return -1
		}
		if a.Seq > b.Seq {
			return 1
		}
		return 0
	})
	return st, nil
}

// RestoreState wipes the wheel and reloads it from an exported state,
// preserving every entry's At/Key/Seq/ID verbatim so the canonical
// (Key, Seq) execution order after restore matches the original run
// exactly. resolve maps a handler descriptor back to the (rebuilt) event
// closure; an unresolvable ID is an error, as is an entry at or before the
// restored clock (a restored wheel must be strictly monotonic).
func (w *Wheel) RestoreState(st WheelState, resolve func(id uint64) (Event, bool)) error {
	for idx := range w.buckets {
		b := w.buckets[idx]
		for i := range b {
			b[i] = Entry{}
		}
		w.buckets[idx] = b[:0]
	}
	for i := range w.occ {
		w.occ[i] = 0
	}
	w.far = w.far[:0]
	w.pending = 0
	w.now = st.Now
	w.seq = st.Seq
	w.advancing = false
	for _, e := range st.Entries {
		if e.At <= st.Now {
			return fmt.Errorf("sim: restored wheel entry at %d is not after the restored clock %d", e.At, st.Now)
		}
		if e.Seq > st.Seq {
			return fmt.Errorf("sim: restored wheel entry seq %d exceeds the sequence counter %d", e.Seq, st.Seq)
		}
		ev, ok := resolve(e.ID)
		if !ok || ev == nil {
			return fmt.Errorf("sim: no handler for wheel entry id %#x (at=%d key=%#x)", e.ID, e.At, e.Key)
		}
		w.pending++
		if e.At-w.now >= w.horizon {
			heap.Push(&w.far, farEvent{at: e.At, key: e.Key, seq: e.Seq, id: e.ID, ev: ev})
			continue
		}
		idx := e.At & w.mask
		w.buckets[idx] = append(w.buckets[idx], Entry{Key: e.Key, Seq: e.Seq, ID: e.ID, Ev: ev})
		w.occ[idx>>6] |= 1 << (uint(idx) & 63)
	}
	if Debug {
		if next, ok := w.NextEventAt(); ok {
			Assertf(next > w.now, "wheel: restore left an event at %d at or before the clock %d", next, w.now)
		}
		Assertf(w.pending == len(st.Entries), "wheel: restore pending mismatch %d != %d", w.pending, len(st.Entries))
	}
	return nil
}
