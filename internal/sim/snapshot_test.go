package sim

import (
	"reflect"
	"testing"
)

// TestRNGStateRoundTrip is the checkpoint contract for the generator: the
// draw sequence after SetState(State()) is identical to the sequence
// without the round trip, at any point in the stream and for forked
// sub-streams.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewStream(42, StreamTraffic)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	st := r.State()

	var want []uint64
	for i := 0; i < 8; i++ {
		want = append(want, r.Uint64())
	}
	wantF := r.Float64()
	fork := r.Fork()
	wantFork := fork.Uint64()

	r.SetState(st)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d after round trip = %#x, want %#x", i, got, w)
		}
	}
	if got := r.Float64(); got != wantF {
		t.Errorf("Float64 after round trip = %v, want %v", got, wantF)
	}
	if got := r.Fork().Uint64(); got != wantFork {
		t.Errorf("forked draw after round trip diverges")
	}
}

// TestRNGSetStateNormalizesZero checks the xorshift128+ fixed point: the
// all-zero state would make every future draw zero, so SetState must map
// it to a usable state deterministically.
func TestRNGSetStateNormalizesZero(t *testing.T) {
	a := NewStream(1, StreamTraffic)
	b := NewStream(2, StreamTraffic)
	a.SetState(RNGState{})
	b.SetState(RNGState{})
	got := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}
	want := []uint64{b.Uint64(), b.Uint64(), b.Uint64()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-state normalization not deterministic: %v vs %v", got, want)
	}
	if got[0] == 0 && got[1] == 0 && got[2] == 0 {
		t.Fatal("zero state restored verbatim: generator is stuck at zero")
	}
}

// wheelFire records one handler firing for order comparison.
type wheelFire struct {
	At Cycle
	ID uint64
}

// drainWheel advances a wheel cycle by cycle to horizon, recording every
// firing in execution order. fired points at the slice the restored
// handler closures append to.
func drainWheel(w *Wheel, horizon Cycle, fired *[]wheelFire) []wheelFire {
	*fired = (*fired)[:0]
	for c := w.now + 1; c <= horizon; c++ {
		w.Advance(c)
	}
	out := make([]wheelFire, len(*fired))
	copy(out, *fired)
	return out
}

// TestWheelExportRestoreRoundTrip loads a wheel with keyed, identified
// events spanning near buckets and the far heap, exports mid-run, restores
// into a fresh wheel, and checks the remaining executions fire in exactly
// the original order — the foundation of resume equivalence.
func TestWheelExportRestoreRoundTrip(t *testing.T) {
	var fired []wheelFire
	mk := func(id uint64) Event {
		return func(at Cycle) { fired = append(fired, wheelFire{At: at, ID: id}) }
	}
	build := func() *Wheel {
		w := NewWheel(64)
		// Deliberately interleaved keys and cycles, plus far-heap entries
		// beyond the 64-cycle horizon.
		w.ScheduleKeyedID(5, 3, HandlerID(1, 3, 0), mk(HandlerID(1, 3, 0)))
		w.ScheduleKeyedID(5, 1, HandlerID(1, 1, 0), mk(HandlerID(1, 1, 0)))
		w.ScheduleKeyedID(5, 3, HandlerID(2, 3, 1), mk(HandlerID(2, 3, 1)))
		w.ScheduleKeyedID(9, 2, HandlerID(3, 2, 0), mk(HandlerID(3, 2, 0)))
		w.ScheduleKeyedID(200, 4, HandlerID(4, 4, 0), mk(HandlerID(4, 4, 0)))
		w.ScheduleKeyedID(450, 1, HandlerID(5, 1, 2), mk(HandlerID(5, 1, 2)))
		return w
	}

	// Reference: run to completion without interruption.
	ref := build()
	var refTail []wheelFire
	for c := Cycle(1); c <= 3; c++ {
		ref.Advance(c)
	}
	refTail = drainWheel(ref, 500, &fired)

	// Round trip at cycle 3 (before anything fired).
	w := build()
	for c := Cycle(1); c <= 3; c++ {
		w.Advance(c)
	}
	st, err := w.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if st.Now != 3 || len(st.Entries) != 6 {
		t.Fatalf("export: now=%d entries=%d, want 3 and 6", st.Now, len(st.Entries))
	}

	w2 := NewWheel(64)
	resolve := func(id uint64) (Event, bool) { return mk(id), true }
	if err := w2.RestoreState(st, resolve); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if w2.Pending() != 6 {
		t.Fatalf("restored pending = %d, want 6", w2.Pending())
	}
	got := drainWheel(w2, 500, &fired)
	if !reflect.DeepEqual(got, refTail) {
		t.Fatalf("restored firing order diverges:\n got %v\nwant %v", got, refTail)
	}

	// Sequence counter must survive so post-restore scheduling keeps the
	// global insertion order.
	if st.Seq == 0 {
		t.Fatal("exported Seq is zero despite six insertions")
	}
}

// TestWheelExportRejectsAnonymousEvents: events scheduled without a handler
// ID cannot be reconstructed by a resolver, so export must fail loudly
// rather than silently dropping them.
func TestWheelExportRejectsAnonymousEvents(t *testing.T) {
	w := NewWheel(64)
	w.ScheduleKeyed(5, 1, func(Cycle) {})
	if _, err := w.ExportState(); err == nil {
		t.Fatal("export of an id-less near event succeeded")
	}
	w2 := NewWheel(64)
	w2.Schedule(500, func(Cycle) {}) // far heap path
	if _, err := w2.ExportState(); err == nil {
		t.Fatal("export of an id-less far event succeeded")
	}
}

// TestWheelRestoreValidation: a restored wheel must be strictly monotonic
// (no entry at or before the restored clock) and fully resolvable.
func TestWheelRestoreValidation(t *testing.T) {
	ev := func(Cycle) {}
	resolve := func(uint64) (Event, bool) { return ev, true }

	w := NewWheel(64)
	stale := WheelState{Now: 10, Seq: 5, Entries: []WheelEntryState{{At: 10, Key: 1, Seq: 1, ID: 7}}}
	if err := w.RestoreState(stale, resolve); err == nil {
		t.Fatal("restore accepted an entry at the restored clock")
	}

	w = NewWheel(64)
	unseq := WheelState{Now: 10, Seq: 5, Entries: []WheelEntryState{{At: 11, Key: 1, Seq: 6, ID: 7}}}
	if err := w.RestoreState(unseq, resolve); err == nil {
		t.Fatal("restore accepted an entry seq beyond the sequence counter")
	}

	w = NewWheel(64)
	orphan := WheelState{Now: 10, Seq: 5, Entries: []WheelEntryState{{At: 11, Key: 1, Seq: 1, ID: 7}}}
	noResolve := func(uint64) (Event, bool) { return nil, false }
	if err := w.RestoreState(orphan, noResolve); err == nil {
		t.Fatal("restore accepted an unresolvable handler id")
	}
}

// TestHandlerIDPacking pins the descriptor encoding: kind, object, and
// parameter round-trip through the packed word for the full field ranges.
func TestHandlerIDPacking(t *testing.T) {
	for _, tc := range []struct {
		kind  uint8
		obj   uint32
		param uint16
	}{
		{1, 0, 0},
		{HTelemMarker, 1<<32 - 1, 1<<16 - 1},
		{7, 123_456, 42},
	} {
		id := HandlerID(tc.kind, tc.obj, tc.param)
		if id == 0 {
			t.Fatalf("HandlerID(%v) = 0, the reserved non-snapshotable value", tc)
		}
		if HandlerKind(id) != tc.kind || HandlerObj(id) != tc.obj || HandlerParam(id) != tc.param {
			t.Errorf("HandlerID(%d,%d,%d) unpacked to (%d,%d,%d)",
				tc.kind, tc.obj, tc.param, HandlerKind(id), HandlerObj(id), HandlerParam(id))
		}
	}
}
