// Package sim provides the foundational pieces shared by the network
// simulator: the time base, deterministic random number generation, and
// small helpers for cycle-driven simulation.
//
// The simulated system follows the paper's setup: routers run at a fixed
// 625 MHz clock (one network cycle = 1.6 ns) while each opto-electronic
// link runs in its own clock domain at a policy-controlled bit rate.
// All control timing is expressed in router cycles.
package sim

// Cycle is a point in simulated time, measured in router clock cycles.
// The router clock is fixed at 625 MHz, so one Cycle is 1.6 ns.
type Cycle int64

// Physical constants of the simulated system.
const (
	// RouterClockHz is the fixed router core frequency.
	RouterClockHz = 625e6

	// CyclePicos is the duration of one router cycle in picoseconds.
	CyclePicos = 1600

	// FlitBits is the width of a flit in bits. At the maximum bit rate of
	// 10 Gb/s a 16-bit flit serialises in exactly one router cycle.
	FlitBits = 16

	// MaxBitRateGbps is the maximum link bit rate in Gb/s.
	MaxBitRateGbps = 10.0
)

// Seconds converts a cycle count to seconds of simulated time.
func (c Cycle) Seconds() float64 { return float64(c) * CyclePicos * 1e-12 }

// Micros converts a cycle count to microseconds of simulated time.
func (c Cycle) Micros() float64 { return float64(c) * CyclePicos * 1e-6 }

// CyclesFromMicros returns the number of whole router cycles in d
// microseconds of real time. Used to express the paper's 100 µs attenuator
// response and 200 µs laser-controller epoch in cycles.
func CyclesFromMicros(d float64) Cycle {
	return Cycle(d*1e6/CyclePicos + 0.5)
}

// MilliBitsPerCycle returns the integer milli-bit serialisation credit a
// link earns per router cycle at the given bit rate. A 16-bit flit is
// FlitMilliBits milli-bits, so a 10 Gb/s link earns exactly one flit of
// credit per cycle. Using integer milli-bits keeps multi-million-cycle
// simulations free of floating-point drift.
func MilliBitsPerCycle(bitRateGbps float64) int64 {
	// bits per cycle = bitRate(Gb/s) * 1.6ns = bitRate * 1.6 bits.
	// milli-bits per cycle = bitRate * 1600.
	return int64(bitRateGbps*1600 + 0.5)
}

// FlitMilliBits is the serialisation cost of one flit in milli-bits.
const FlitMilliBits = FlitBits * 1000
