package sim

import "container/heap"

// Event is a callback fired at a scheduled cycle. Events must not schedule
// into the past.
type Event func(now Cycle)

// Wheel is a timing wheel for near-future events with a heap overflow for
// far-future ones. Almost all simulator events (flit arrivals, channel
// free, credit returns) land within a few cycles; the wheel makes those
// O(1). Longer waits (CDR relock, link wake-up) spill into the heap.
type Wheel struct {
	buckets   [][]Event
	mask      Cycle
	now       Cycle
	horizon   Cycle
	far       farHeap
	pending   int
	advancing bool
}

// NewWheel returns a wheel with the given power-of-two bucket count.
func NewWheel(size int) *Wheel {
	if size <= 0 || size&(size-1) != 0 {
		panic("sim: wheel size must be a positive power of two")
	}
	return &Wheel{
		buckets: make([][]Event, size),
		mask:    Cycle(size - 1),
		horizon: Cycle(size),
	}
}

// Schedule registers ev to fire at cycle at. Inside an Advance callback,
// scheduling for the current cycle fires later in the same Advance; outside
// of Advance, a request for the current cycle (or earlier) is deferred to
// the next cycle, since the current cycle's bucket has already run.
func (w *Wheel) Schedule(at Cycle, ev Event) {
	if w.advancing {
		if at < w.now {
			at = w.now
		}
	} else if at <= w.now {
		at = w.now + 1
	}
	w.pending++
	if at-w.now >= w.horizon {
		heap.Push(&w.far, farEvent{at: at, ev: ev})
		return
	}
	idx := at & w.mask
	w.buckets[idx] = append(w.buckets[idx], ev)
}

// Advance runs every event scheduled for cycle now. Cycles must be
// presented consecutively (every cycle advanced exactly once, in order).
func (w *Wheel) Advance(now Cycle) {
	w.now = now
	w.advancing = true
	defer func() { w.advancing = false }()
	// Pull matured far events into the current bucket first.
	for len(w.far) > 0 && w.far[0].at <= now {
		fe := heap.Pop(&w.far).(farEvent)
		w.pending--
		fe.ev(now)
	}
	idx := now & w.mask
	bucket := w.buckets[idx]
	if len(bucket) == 0 {
		return
	}
	// Events may schedule new events for this same cycle; they land in the
	// same bucket, so iterate by index and re-read.
	for i := 0; i < len(w.buckets[idx]); i++ {
		ev := w.buckets[idx][i]
		w.buckets[idx][i] = nil
		w.pending--
		ev(now)
	}
	w.buckets[idx] = w.buckets[idx][:0]
}

// Pending returns the number of scheduled events not yet fired. A drained
// wheel with idle traffic sources means the simulation has quiesced.
func (w *Wheel) Pending() int { return w.pending }

type farEvent struct {
	at Cycle
	ev Event
}

type farHeap []farEvent

func (h farHeap) Len() int            { return len(h) }
func (h farHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h farHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *farHeap) Push(x interface{}) { *h = append(*h, x.(farEvent)) }
func (h *farHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
