package sim

import (
	"container/heap"
	"math/bits"
	"slices"
)

// Event is a callback fired at a scheduled cycle. Events must not schedule
// into the past.
type Event func(now Cycle)

// Entry is one scheduled event together with its ordering coordinates: the
// actor key that owns it (see ActorKey) and the global insertion sequence
// number. BeginCycle returns a cycle's entries sorted by (Key, Seq) — the
// canonical order the sharded network engine executes in.
type Entry struct {
	Key uint64
	Seq uint64
	Ev  Event

	// ID names the handler behind Ev for checkpointing: closures cannot be
	// serialized, so every event scheduled by the network engine carries a
	// stable descriptor (see network handler registry) that a restore
	// resolves back to the rebuilt closure. ID 0 means "not snapshotable";
	// ExportState refuses wheels containing such entries.
	ID uint64
}

// Wheel is a timing wheel for near-future events with a heap overflow for
// far-future ones. Almost all simulator events (flit arrivals, channel
// free, credit returns) land within a few cycles; the wheel makes those
// O(1). Longer waits (CDR relock, link wake-up) spill into the heap.
//
// A per-bucket occupancy bitmap (one bit per bucket) makes NextEventAt a
// few word scans, which is what lets the surrounding simulator fast-forward
// over idle gaps instead of advancing cycle by cycle.
//
// Two draining disciplines coexist:
//
//   - Advance fires a cycle's events in insertion order (far-heap events
//     first), exactly the historical sequential semantics. Standalone users
//     (unit tests, the telemetry sampler driving its own wheel) use this.
//   - BeginCycle hands the cycle's events back sorted by (Key, Seq) — a
//     total order that is independent of how many shards produced them, as
//     long as every key has a single deterministic producer. The parallel
//     network engine uses this; see DESIGN.md §6g.
type Wheel struct {
	buckets [][]Entry
	//optolint:derived occupancy bitmap, rebuilt by the restore path's re-inserts
	occ     []uint64 // bit b set iff buckets[b] is non-empty
	mask    Cycle
	now     Cycle
	horizon Cycle
	far     farHeap
	pending int
	seq     uint64
	//optolint:derived BeginCycle scratch, reused across cycles
	run []Entry // BeginCycle scratch, reused across cycles
	//optolint:derived re-entrancy guard, false whenever the wheel is quiescent enough to export
	advancing bool
}

// NewWheel returns a wheel with the given power-of-two bucket count.
func NewWheel(size int) *Wheel {
	if size <= 0 || size&(size-1) != 0 {
		panic("sim: wheel size must be a positive power of two")
	}
	return &Wheel{
		buckets: make([][]Entry, size),
		occ:     make([]uint64, (size+63)/64),
		mask:    Cycle(size - 1),
		horizon: Cycle(size),
	}
}

// Schedule registers ev to fire at cycle at under key 0 (the coordinator
// band; see ScheduleKeyed). Inside an Advance callback, scheduling for the
// current cycle fires later in the same Advance; outside of Advance, a
// request for the current cycle (or earlier) is deferred to the next cycle,
// since the current cycle's bucket has already run.
func (w *Wheel) Schedule(at Cycle, ev Event) {
	w.ScheduleKeyed(at, 0, ev)
}

// ScheduleKeyed registers ev to fire at cycle at under the given ordering
// key. The sequence number is assigned here, at insertion, so the canonical
// (Key, Seq) order of a cycle is fixed by the order Schedule calls reach the
// wheel — which the sharded engine makes deterministic by draining staged
// schedules in shard order.
func (w *Wheel) ScheduleKeyed(at Cycle, key uint64, ev Event) {
	w.ScheduleKeyedID(at, key, 0, ev)
}

// ScheduleID registers ev under key 0 with a checkpoint handler descriptor.
func (w *Wheel) ScheduleID(at Cycle, id uint64, ev Event) {
	w.ScheduleKeyedID(at, 0, id, ev)
}

// ScheduleKeyedID is ScheduleKeyed plus a handler descriptor id recorded in
// the entry, allowing the wheel's contents to be exported to a checkpoint
// and resolved back to events on restore.
func (w *Wheel) ScheduleKeyedID(at Cycle, key, id uint64, ev Event) {
	if w.advancing {
		if at < w.now {
			at = w.now
		}
	} else if at <= w.now {
		at = w.now + 1
	}
	w.pending++
	w.seq++
	if at-w.now >= w.horizon {
		heap.Push(&w.far, farEvent{at: at, key: key, seq: w.seq, id: id, ev: ev})
		return
	}
	idx := at & w.mask
	w.buckets[idx] = append(w.buckets[idx], Entry{Key: key, Seq: w.seq, ID: id, Ev: ev})
	w.occ[idx>>6] |= 1 << (uint(idx) & 63)
}

// Advance runs every event scheduled for cycle now in insertion order.
// Cycles must be presented in increasing order; gaps are allowed only when
// every skipped cycle is known to be event-free (see NextEventAt and
// SkipTo).
func (w *Wheel) Advance(now Cycle) {
	if Debug {
		Assertf(now >= w.now, "wheel: Advance(%d) moves the clock backwards from %d", now, w.now)
		if next, ok := w.NextEventAt(); ok {
			Assertf(next >= now, "wheel: Advance(%d) would skip over the event scheduled at %d", now, next)
		}
	}
	w.now = now
	w.advancing = true
	// Pull matured far events into the current bucket first.
	for len(w.far) > 0 && w.far[0].at <= now {
		fe := heap.Pop(&w.far).(farEvent)
		w.pending--
		fe.ev(now)
	}
	idx := now & w.mask
	if len(w.buckets[idx]) == 0 {
		w.advancing = false
		return
	}
	// Events may schedule new events for this same cycle; they land in the
	// same bucket, so iterate by index and re-read.
	for i := 0; i < len(w.buckets[idx]); i++ {
		ev := w.buckets[idx][i].Ev
		w.buckets[idx][i] = Entry{}
		w.pending--
		ev(now)
	}
	w.buckets[idx] = w.buckets[idx][:0]
	w.occ[idx>>6] &^= 1 << (uint(idx) & 63)
	w.advancing = false
}

// BeginCycle removes every event scheduled for cycle now — matured far-heap
// events included — and returns them sorted by (Key, Seq): key-0
// coordinator events first, then each actor's events in insertion order.
// The caller owns running them; the returned slice is valid until the next
// BeginCycle. Unlike Advance, callbacks that schedule for the current cycle
// are deferred to the next one (the bucket has already been harvested), so
// the canonical engine never sees same-cycle insertions.
func (w *Wheel) BeginCycle(now Cycle) []Entry {
	if Debug {
		Assertf(now >= w.now, "wheel: BeginCycle(%d) moves the clock backwards from %d", now, w.now)
		if next, ok := w.NextEventAt(); ok {
			Assertf(next >= now, "wheel: BeginCycle(%d) would skip over the event scheduled at %d", now, next)
		}
	}
	w.now = now
	w.run = w.run[:0]
	for len(w.far) > 0 && w.far[0].at <= now {
		fe := heap.Pop(&w.far).(farEvent)
		w.pending--
		w.run = append(w.run, Entry{Key: fe.key, Seq: fe.seq, ID: fe.id, Ev: fe.ev})
	}
	idx := now & w.mask
	b := w.buckets[idx]
	if len(b) > 0 {
		w.run = append(w.run, b...)
		w.pending -= len(b)
		for i := range b {
			b[i] = Entry{}
		}
		w.buckets[idx] = b[:0]
		w.occ[idx>>6] &^= 1 << (uint(idx) & 63)
	}
	if len(w.run) > 1 {
		slices.SortFunc(w.run, func(a, b Entry) int {
			if a.Key != b.Key {
				if a.Key < b.Key {
					return -1
				}
				return 1
			}
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		})
	}
	return w.run
}

// SkipTo declares every cycle in (w.now, now] event-free and jumps the
// wheel's clock to now without touching the skipped buckets. The caller
// must have verified — via NextEventAt — that no event is scheduled at or
// before now; skipping past a scheduled event corrupts the wheel. No-op
// when now <= w.now.
func (w *Wheel) SkipTo(now Cycle) {
	if now > w.now {
		if Debug {
			if next, ok := w.NextEventAt(); ok {
				Assertf(next > now, "wheel: SkipTo(%d) would skip over the event scheduled at %d", now, next)
			}
		}
		w.now = now
	}
}

// NextEventAt returns the earliest cycle with a scheduled event and true,
// or false when the wheel is empty. It scans the occupancy bitmap (one bit
// per bucket, size/64 words) and peeks the far heap's top, so an idle
// simulator can find its next wake-up in a handful of word operations.
func (w *Wheel) NextEventAt() (Cycle, bool) {
	next, found := w.nextNear()
	if len(w.far) > 0 && (!found || w.far[0].at < next) {
		next, found = w.far[0].at, true
	}
	return next, found
}

// nextNear locates the earliest occupied bucket in circular order starting
// just after the current cycle. All bucketed events live in
// (w.now, w.now+horizon), so the first set bit along that arc is the
// nearest event.
func (w *Wheel) nextNear() (Cycle, bool) {
	start := int((w.now + 1) & w.mask)
	sw, sb := start>>6, uint(start&63)
	// Bits at or after start within the first word.
	if word := w.occ[sw] &^ (1<<sb - 1); word != 0 {
		return w.cycleFor(sw<<6 + bits.TrailingZeros64(word)), true
	}
	// Whole words along the arc.
	for j := 1; j < len(w.occ); j++ {
		wi := (sw + j) % len(w.occ)
		if word := w.occ[wi]; word != 0 {
			return w.cycleFor(wi<<6 + bits.TrailingZeros64(word)), true
		}
	}
	// Wrap-around: bits before start within the first word.
	if word := w.occ[sw] & (1<<sb - 1); word != 0 {
		return w.cycleFor(sw<<6 + bits.TrailingZeros64(word)), true
	}
	return 0, false
}

// cycleFor maps an occupied bucket index back to the absolute cycle it
// holds events for.
func (w *Wheel) cycleFor(idx int) Cycle {
	size := int(w.mask) + 1
	d := (idx - int((w.now+1)&w.mask) + size) % size
	return w.now + 1 + Cycle(d)
}

// Pending returns the number of scheduled events not yet fired. A drained
// wheel with idle traffic sources means the simulation has quiesced.
func (w *Wheel) Pending() int { return w.pending }

type farEvent struct {
	at  Cycle
	key uint64
	seq uint64
	id  uint64
	ev  Event
}

type farHeap []farEvent

func (h farHeap) Len() int { return len(h) }
func (h farHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h farHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *farHeap) Push(x interface{}) { *h = append(*h, x.(farEvent)) }
func (h *farHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
