package sim

import (
	"testing"
	"testing/quick"
)

func TestWheelFiresAtScheduledCycle(t *testing.T) {
	w := NewWheel(16)
	fired := map[Cycle]bool{}
	for _, at := range []Cycle{1, 3, 7, 15} {
		at := at
		w.Schedule(at, func(now Cycle) {
			if now != at {
				t.Errorf("event scheduled for %d fired at %d", at, now)
			}
			fired[at] = true
		})
	}
	for c := Cycle(0); c < 20; c++ {
		w.Advance(c)
	}
	if len(fired) != 4 {
		t.Errorf("fired %d events, want 4", len(fired))
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after drain", w.Pending())
	}
}

func TestWheelFarFuture(t *testing.T) {
	w := NewWheel(8)
	var got Cycle = -1
	w.Schedule(1000, func(now Cycle) { got = now })
	for c := Cycle(0); c <= 1000; c++ {
		w.Advance(c)
	}
	if got != 1000 {
		t.Errorf("far event fired at %d, want 1000", got)
	}
}

func TestWheelSameCycleChaining(t *testing.T) {
	// An event may schedule another event for the same cycle; it must fire
	// within the same Advance.
	w := NewWheel(8)
	order := []int{}
	w.Schedule(5, func(now Cycle) {
		order = append(order, 1)
		w.Schedule(5, func(Cycle) { order = append(order, 2) })
	})
	for c := Cycle(0); c < 8; c++ {
		w.Advance(c)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("chained events order = %v", order)
	}
}

func TestWheelPastScheduleOutsideAdvance(t *testing.T) {
	// Outside Advance, scheduling at or before `now` defers to now+1
	// (that bucket has already run).
	w := NewWheel(8)
	w.Advance(0)
	w.Advance(1)
	fired := Cycle(-1)
	w.Schedule(1, func(now Cycle) { fired = now })
	w.Advance(2)
	if fired != 2 {
		t.Errorf("past-scheduled event fired at %d, want deferral to 2", fired)
	}
}

func TestWheelHorizonBoundary(t *testing.T) {
	// An event exactly `size` cycles ahead must go to the far heap, not
	// collide with the current bucket.
	w := NewWheel(8)
	fired := Cycle(-1)
	w.Advance(0)
	w.Schedule(8, func(now Cycle) { fired = now })
	w.Advance(0) // same bucket index as 8 — must NOT fire
	if fired != -1 {
		t.Fatal("event for cycle 8 fired at cycle 0 (wheel wrap bug)")
	}
	for c := Cycle(1); c <= 8; c++ {
		w.Advance(c)
	}
	if fired != 8 {
		t.Errorf("fired at %d, want 8", fired)
	}
}

func TestWheelBadSizePanics(t *testing.T) {
	for _, size := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWheel(%d) did not panic", size)
				}
			}()
			NewWheel(size)
		}()
	}
}

func TestWheelNextEventAtEmpty(t *testing.T) {
	w := NewWheel(16)
	if at, ok := w.NextEventAt(); ok {
		t.Errorf("empty wheel reported next event at %d", at)
	}
	w.Advance(5)
	if _, ok := w.NextEventAt(); ok {
		t.Error("empty wheel reported a next event after Advance")
	}
}

func TestWheelNextEventAtNear(t *testing.T) {
	w := NewWheel(16)
	nop := Event(func(Cycle) {})
	w.Advance(0)
	w.Schedule(7, nop)
	w.Schedule(12, nop)
	if at, ok := w.NextEventAt(); !ok || at != 7 {
		t.Errorf("NextEventAt = %d,%v, want 7,true", at, ok)
	}
	// After the first event fires, the next is 12.
	for c := Cycle(1); c <= 7; c++ {
		w.Advance(c)
	}
	if at, ok := w.NextEventAt(); !ok || at != 12 {
		t.Errorf("NextEventAt = %d,%v, want 12,true", at, ok)
	}
}

func TestWheelNextEventAtWrap(t *testing.T) {
	// The occupied bucket index is numerically below the current bucket
	// index: the circular scan must wrap and still find the nearest cycle.
	w := NewWheel(16)
	nop := Event(func(Cycle) {})
	for c := Cycle(0); c <= 13; c++ {
		w.Advance(c)
	}
	w.Schedule(17, nop) // bucket 1, current bucket 13
	if at, ok := w.NextEventAt(); !ok || at != 17 {
		t.Errorf("NextEventAt = %d,%v, want 17,true", at, ok)
	}
}

func TestWheelNextEventAtFar(t *testing.T) {
	w := NewWheel(16)
	nop := Event(func(Cycle) {})
	w.Schedule(1000, nop)
	if at, ok := w.NextEventAt(); !ok || at != 1000 {
		t.Errorf("NextEventAt = %d,%v, want 1000,true (far heap)", at, ok)
	}
	// A nearer bucketed event wins over the far top.
	w.Schedule(9, nop)
	if at, ok := w.NextEventAt(); !ok || at != 9 {
		t.Errorf("NextEventAt = %d,%v, want 9,true", at, ok)
	}
}

func TestWheelSkipToAdvance(t *testing.T) {
	// Skipping over a verified-empty gap then advancing at the next event
	// cycle fires the event exactly as consecutive stepping would.
	w := NewWheel(16)
	fired := Cycle(-1)
	w.Advance(0)
	w.Schedule(9, func(now Cycle) { fired = now })
	at, ok := w.NextEventAt()
	if !ok || at != 9 {
		t.Fatalf("NextEventAt = %d,%v, want 9,true", at, ok)
	}
	w.SkipTo(at - 1)
	w.Advance(at)
	if fired != 9 {
		t.Errorf("event fired at %d, want 9", fired)
	}
	// After the skip, deferred past-scheduling still lands at now+1.
	deferred := Cycle(-1)
	w.Schedule(2, func(now Cycle) { deferred = now })
	w.Advance(10)
	if deferred != 10 {
		t.Errorf("past schedule after skip fired at %d, want 10", deferred)
	}
}

// TestWheelSkipEquivalence: advancing only at NextEventAt cycles (skipping
// the gaps) fires every event at the same cycle as consecutive stepping.
func TestWheelSkipEquivalence(t *testing.T) {
	run := func(skip bool) map[int]Cycle {
		r := NewRNG(42)
		w := NewWheel(32)
		got := map[int]Cycle{}
		for i := 0; i < 100; i++ {
			id := i
			at := Cycle(1 + r.Intn(500))
			w.Schedule(at, func(fireAt Cycle) { got[id] = fireAt })
		}
		now := Cycle(0)
		for now < 600 {
			if skip {
				at, ok := w.NextEventAt()
				if !ok || at > 600 {
					break
				}
				w.SkipTo(at - 1)
				now = at
			} else {
				now++
			}
			w.Advance(now)
		}
		return got
	}
	stepped, skipped := run(false), run(true)
	if len(stepped) != 100 || len(skipped) != 100 {
		t.Fatalf("fired %d stepped, %d skipped, want 100 each", len(stepped), len(skipped))
	}
	for id, at := range stepped {
		if skipped[id] != at {
			t.Errorf("event %d: stepped fired at %d, skipped at %d", id, at, skipped[id])
		}
	}
}

// TestWheelPropertyAllFire: random schedules all fire exactly once at
// their scheduled cycle.
func TestWheelPropertyAllFire(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		w := NewWheel(32)
		const n = 200
		want := map[int]Cycle{}
		got := map[int]Cycle{}
		now := Cycle(0)
		scheduled := 0
		for scheduled < n {
			// advance a random amount, scheduling random future events
			for k := 0; k < 3 && scheduled < n; k++ {
				id := scheduled
				at := now + 1 + Cycle(r.Intn(100))
				want[id] = at
				w.Schedule(at, func(fireAt Cycle) { got[id] = fireAt })
				scheduled++
			}
			next := now + 1 + Cycle(r.Intn(5))
			for ; now < next; now++ {
				w.Advance(now)
			}
		}
		for ; now < 1000; now++ {
			w.Advance(now)
		}
		if len(got) != n {
			return false
		}
		for id, at := range want {
			if got[id] != at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestWheelRecurringSamplerBoundsSkips models the telemetry sampler: a
// self-rearming event every 512 cycles. NextEventAt must surface it as the
// skip bound at every point in the cycle — including exactly at the
// boundary — so a fast-forwarding caller can never jump over a sample.
func TestWheelRecurringSamplerBoundsSkips(t *testing.T) {
	const period = 512
	w := NewWheel(4096)
	var fired []Cycle
	var rearm func(at Cycle)
	rearm = func(at Cycle) {
		w.Schedule(at+period, func(now Cycle) {
			fired = append(fired, now)
			rearm(now)
		})
	}
	rearm(0)

	now := Cycle(0)
	for len(fired) < 10 {
		next, ok := w.NextEventAt()
		if !ok {
			t.Fatal("recurring sampler vanished from the wheel")
		}
		if want := Cycle(len(fired)+1) * period; next != want {
			t.Fatalf("NextEventAt = %d after %d firings, want %d", next, len(fired), want)
		}
		// Skip to the cycle just before the event — the legal maximum — then
		// advance through the boundary itself.
		if next-1 > now {
			w.SkipTo(next - 1)
		}
		now = next
		w.Advance(now)
		if w.Pending() != 1 {
			t.Fatalf("pending = %d after firing, want 1 (the re-armed sampler)", w.Pending())
		}
	}
	for i, at := range fired {
		if want := Cycle(i+1) * period; at != want {
			t.Errorf("sample %d fired at %d, want %d", i, at, want)
		}
	}

	// SkipTo at the boundary minus one must leave the event intact even
	// when the skip lands on the same bucket index modulo wheel size: the
	// next NextEventAt still finds it one cycle ahead.
	next, ok := w.NextEventAt()
	if !ok || next != now+period {
		t.Fatalf("after loop: NextEventAt = %d,%v, want %d", next, ok, now+period)
	}
	w.SkipTo(next - 1)
	if got, ok := w.NextEventAt(); !ok || got != next {
		t.Fatalf("NextEventAt after boundary skip = %d,%v, want %d", got, ok, next)
	}
}

// TestWheelSkipToOntoBarrier skips the clock exactly onto a wrap barrier (a
// multiple of the wheel size) and then steps across it: the skip must leave
// the bucket occupancy intact so events on both sides of the barrier still
// fire on their cycles. This is the sharded engine's idle fast-forward
// landing precisely on a window boundary.
func TestWheelSkipToOntoBarrier(t *testing.T) {
	w := NewWheel(16)
	w.BeginCycle(0)
	fired := map[Cycle]bool{}
	mark := func(now Cycle) { fired[now] = true }
	w.ScheduleKeyed(48, 7, mark) // far heap: 48-0 >= 16
	if at, ok := w.NextEventAt(); !ok || at != 48 {
		t.Fatalf("NextEventAt = %v,%v, want 48,true", at, ok)
	}
	w.SkipTo(32) // exactly a wheel-size multiple, event-free per NextEventAt
	// From the barrier, schedule within the new window and on its last cycle.
	w.ScheduleKeyed(40, 3, mark)
	for c := Cycle(33); c <= 48; c++ {
		for _, e := range w.BeginCycle(c) {
			e.Ev(c)
		}
	}
	if !fired[40] || !fired[48] {
		t.Errorf("fired = %v, want events at 40 and 48", fired)
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after drain", w.Pending())
	}
}

// TestWheelBeginCycleEmpty: harvesting a cycle with zero events must return
// an empty batch and leave the wheel fully usable — the sharded engine hits
// this every idle cycle between policy windows.
func TestWheelBeginCycleEmpty(t *testing.T) {
	w := NewWheel(8)
	w.ScheduleKeyed(5, 1, func(Cycle) {})
	for c := Cycle(0); c < 5; c++ {
		if batch := w.BeginCycle(c); len(batch) != 0 {
			t.Fatalf("BeginCycle(%d) returned %d entries on an empty cycle", c, len(batch))
		}
		if w.Pending() != 1 {
			t.Fatalf("empty BeginCycle(%d) changed pending to %d", c, w.Pending())
		}
	}
	if batch := w.BeginCycle(5); len(batch) != 1 {
		t.Fatalf("BeginCycle(5) returned %d entries, want 1", len(batch))
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after harvest", w.Pending())
	}
}

// TestWheelBeginCycleHorizonEdge pins the bucket/far-heap boundary under
// the harvesting API: from cycle now, now+size-1 is the last bucketed cycle
// and now+size must overflow to the far heap — and BeginCycle must harvest
// both on their exact cycles, in (Key, Seq) order when they collide.
func TestWheelBeginCycleHorizonEdge(t *testing.T) {
	w := NewWheel(8)
	w.BeginCycle(0)
	var gotKeys []uint64
	rec := func(key uint64) Event {
		return func(Cycle) { gotKeys = append(gotKeys, key) }
	}
	w.ScheduleKeyed(7, 9, rec(9)) // last bucketed cycle
	w.ScheduleKeyed(8, 4, rec(4)) // first far-heap cycle
	if len(w.far) != 1 {
		t.Fatalf("far heap holds %d events, want 1 (cycle 8 must overflow the horizon)", len(w.far))
	}
	// A far event maturing on the same cycle as a bucketed one must merge
	// into a single sorted batch.
	w.ScheduleKeyed(8, 2, rec(2))
	if len(w.far) != 2 {
		t.Fatalf("far heap holds %d events, want 2", len(w.far))
	}
	for c := Cycle(1); c <= 8; c++ {
		batch := w.BeginCycle(c)
		switch c {
		case 7:
			if len(batch) != 1 {
				t.Fatalf("BeginCycle(7) returned %d entries, want 1", len(batch))
			}
		case 8:
			if len(batch) != 2 {
				t.Fatalf("BeginCycle(8) returned %d entries, want 2", len(batch))
			}
			if batch[0].Key != 2 || batch[1].Key != 4 {
				t.Fatalf("BeginCycle(8) keys = [%d %d], want sorted [2 4]", batch[0].Key, batch[1].Key)
			}
		default:
			if len(batch) != 0 {
				t.Fatalf("BeginCycle(%d) returned %d entries, want 0", c, len(batch))
			}
		}
		for _, e := range batch {
			e.Ev(c)
		}
	}
	want := []uint64{9, 2, 4}
	if len(gotKeys) != 3 || gotKeys[0] != want[0] || gotKeys[1] != want[1] || gotKeys[2] != want[2] {
		t.Errorf("fired key order = %v, want %v", gotKeys, want)
	}
}

// TestWheelBeginCycleSameCycleDefers: under the harvesting API a callback
// that schedules for the already-harvested cycle lands on the next one —
// the canonical engine never sees same-cycle insertions.
func TestWheelBeginCycleSameCycleDefers(t *testing.T) {
	w := NewWheel(8)
	var firedAt Cycle = -1
	w.ScheduleKeyed(3, 1, func(now Cycle) {
		w.ScheduleKeyed(now, 1, func(at Cycle) { firedAt = at })
	})
	for c := Cycle(0); c <= 4; c++ {
		for _, e := range w.BeginCycle(c) {
			e.Ev(c)
		}
	}
	if firedAt != 4 {
		t.Errorf("same-cycle insertion fired at %d, want deferral to 4", firedAt)
	}
}
