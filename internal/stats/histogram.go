package stats

import (
	"math"

	"repro/internal/sim"
)

// Histogram is a log-bucketed latency histogram: cheap to update, compact,
// and accurate to ~9 % anywhere on the range — good enough for the tail
// percentiles papers report (p95/p99).
type Histogram struct {
	counts []int64
	total  int64
}

// bucketsPerOctave controls resolution: 8 sub-buckets per power of two
// bounds relative error at 2^(1/8)-1 ≈ 9 %.
const bucketsPerOctave = 8

func histBucket(v sim.Cycle) int {
	if v < 1 {
		v = 1
	}
	return int(math.Floor(math.Log2(float64(v)) * bucketsPerOctave))
}

func bucketLow(i int) float64 {
	return math.Pow(2, float64(i)/bucketsPerOctave)
}

// Record adds one observation.
func (h *Histogram) Record(v sim.Cycle) {
	i := histBucket(v)
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) as the lower
// bound of the bucket containing it; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return bucketLow(i)
		}
	}
	return bucketLow(len(h.counts) - 1)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}
