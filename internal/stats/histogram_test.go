package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(100)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 90 || got > 110 {
			t.Errorf("Quantile(%g) = %g for a single value of 100", q, got)
		}
	}
}

// TestHistogramQuantileAccuracy: against exact quantiles of a known
// sample, the log-bucket estimate must be within one bucket (~9 %
// below, since we report the bucket's lower bound).
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := sim.NewRNG(3)
	var h Histogram
	var exact []float64
	for i := 0; i < 50_000; i++ {
		// Heavy-tailed sample: mix of short and long latencies.
		v := sim.Cycle(20 + r.Intn(100))
		if r.Bernoulli(0.05) {
			v = sim.Cycle(1000 + r.Intn(10_000))
		}
		h.Record(v)
		exact = append(exact, float64(v))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Quantile(q)
		if got > want*1.01 || got < want/1.15 {
			t.Errorf("Quantile(%g) = %g, exact %g (allowed one log-bucket below)", q, got, want)
		}
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Record(sim.Cycle(1 + r.Intn(100_000)))
		}
		prev := 0.0
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	r := sim.NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := sim.Cycle(1 + r.Intn(5000))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		if math.Abs(a.Quantile(q)-whole.Quantile(q)) > 1e-9 {
			t.Errorf("merged quantile %g differs: %g vs %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("reset did not clear")
	}
}

func TestHistogramZeroAndNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(0) // clamps to 1
	if h.Count() != 1 {
		t.Error("zero value not recorded")
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("quantile of clamped zero = %g, want 1", q)
	}
}
