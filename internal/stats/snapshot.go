package stats

// HistogramState is the serializable form of a Histogram.
type HistogramState struct {
	Counts []int64
	Total  int64
}

// ExportState captures the histogram's buckets.
func (h *Histogram) ExportState() HistogramState {
	st := HistogramState{Counts: make([]int64, len(h.counts)), Total: h.total}
	copy(st.Counts, h.counts)
	return st
}

// RestoreState overwrites the histogram from a snapshot.
func (h *Histogram) RestoreState(st HistogramState) {
	h.counts = append(h.counts[:0], st.Counts...)
	h.total = st.Total
}
