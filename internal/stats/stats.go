// Package stats provides the measurement primitives used to reproduce the
// paper's evaluation: streaming latency aggregation, bucketed time series
// (injection rate, latency, and power over time for Figs. 6 and 7), and the
// power-latency product metric.
package stats

import (
	"math"

	"repro/internal/sim"
)

// Latency is a streaming aggregate of packet latencies.
type Latency struct {
	Count int64
	Sum   float64
	Min   sim.Cycle
	Max   sim.Cycle
}

// Record adds one observation.
func (l *Latency) Record(lat sim.Cycle) {
	if l.Count == 0 || lat < l.Min {
		l.Min = lat
	}
	if lat > l.Max {
		l.Max = lat
	}
	l.Count++
	l.Sum += float64(lat)
}

// Mean returns the mean latency in cycles (0 when empty).
func (l *Latency) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / float64(l.Count)
}

// Merge folds other into l.
func (l *Latency) Merge(other Latency) {
	if other.Count == 0 {
		return
	}
	if l.Count == 0 || other.Min < l.Min {
		l.Min = other.Min
	}
	if other.Max > l.Max {
		l.Max = other.Max
	}
	l.Count += other.Count
	l.Sum += other.Sum
}

// Bucketed accumulates per-bucket observations over time: bucket i covers
// cycles [i·Width, (i+1)·Width).
type Bucketed struct {
	Width sim.Cycle
	sums  []float64
	ns    []int64
}

// NewBucketed creates a bucketed accumulator with the given bucket width.
func NewBucketed(width sim.Cycle) *Bucketed {
	if width <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &Bucketed{Width: width}
}

// Add records value v at time t.
func (b *Bucketed) Add(t sim.Cycle, v float64) {
	i := int(t / b.Width)
	for len(b.sums) <= i {
		b.sums = append(b.sums, 0)
		b.ns = append(b.ns, 0)
	}
	b.sums[i] += v
	b.ns[i]++
}

// Buckets returns the number of buckets touched.
func (b *Bucketed) Buckets() int { return len(b.sums) }

// Mean returns bucket i's mean observation (NaN when empty).
func (b *Bucketed) Mean(i int) float64 {
	if i >= len(b.ns) || b.ns[i] == 0 {
		return math.NaN()
	}
	return b.sums[i] / float64(b.ns[i])
}

// Sum returns bucket i's sum.
func (b *Bucketed) Sum(i int) float64 {
	if i >= len(b.sums) {
		return 0
	}
	return b.sums[i]
}

// N returns bucket i's observation count.
func (b *Bucketed) N(i int) int64 {
	if i >= len(b.ns) {
		return 0
	}
	return b.ns[i]
}

// Point is one sample of a time series.
type Point struct {
	// T is the bucket's start time in cycles.
	T sim.Cycle
	// V is the value.
	V float64
}

// Series is a simple time series.
type Series []Point

// MeanV returns the mean of the series' values (NaN-safe: NaN points are
// skipped).
func (s Series) MeanV() float64 {
	var sum float64
	var n int
	for _, p := range s {
		if !math.IsNaN(p.V) {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MaxV returns the maximum value (NaN when empty).
func (s Series) MaxV() float64 {
	best := math.NaN()
	for _, p := range s {
		if math.IsNaN(p.V) {
			continue
		}
		if math.IsNaN(best) || p.V > best {
			best = p.V
		}
	}
	return best
}

// PowerLatencyProduct multiplies normalised power by normalised latency —
// the paper's single-number power-performance metric.
func PowerLatencyProduct(normPower, normLatency float64) float64 {
	return normPower * normLatency
}

// Reliability aggregates the fault-injection and link-level retransmission
// counters of a run: what the degraded-mode reports print alongside
// latency and power.
type Reliability struct {
	// CorruptedFlits counts flits given a wire error by the injector.
	CorruptedFlits int64 `json:"corrupted_flits"`
	// CrcDrops counts flits the receivers discarded on a failed CRC.
	CrcDrops int64 `json:"crc_drops"`
	// LostToDown counts flits that arrived while their link was hard-down.
	LostToDown int64 `json:"lost_to_down"`
	// Retransmits counts go-back-N replay transmissions.
	Retransmits int64 `json:"retransmits"`
	// Nacks counts replay requests issued by receivers.
	Nacks int64 `json:"nacks"`
	// Timeouts counts retransmit watchdog firings.
	Timeouts int64 `json:"timeouts"`
	// Escalations counts retry exhaustions that forced a link reset.
	Escalations int64 `json:"escalations"`
	// Duplicates counts replayed flits dropped as already delivered.
	Duplicates int64 `json:"duplicates"`
	// RelockFailures counts fault-injected CDR relock failures.
	RelockFailures int64 `json:"relock_failures"`
	// DownLinks is the number of links hard-down at observation time.
	DownLinks int `json:"down_links"`
}

// Policy aggregates the adaptive-policy counters of a run across every
// controlled link, plus the regret bookkeeping against the offline oracle
// when one was computed.
type Policy struct {
	// Kind names the policy implementation ("dvs", "rules", "pid",
	// "oracle-replay").
	Kind string `json:"kind"`
	// Windows counts policy evaluations summed over all controllers.
	Windows int `json:"windows"`
	// Ups/Downs/Holds count the decisions taken.
	Ups   int `json:"ups"`
	Downs int `json:"downs"`
	Holds int `json:"holds"`
	// Rejected counts steps the link refused (extreme level or
	// mid-transition).
	Rejected int `json:"rejected"`
	// Guarded counts step-ups refused by the MaxBER reliability guard.
	Guarded int `json:"guarded"`
	// PdecCount counts external-laser power decrements.
	PdecCount int `json:"pdec_count"`
	// LossDerates counts rule-engine step-downs taken under measured loss
	// or projected BER (zero for other kinds).
	LossDerates int `json:"loss_derates"`
	// StormBackoffs counts rule-engine step-downs toward the safe level
	// during relock storms (zero for other kinds).
	StormBackoffs int `json:"storm_backoffs"`
	// GradualUps counts hysteresis-gated recovery step-ups after clean
	// windows (zero for other kinds).
	GradualUps int `json:"gradual_ups"`
	// EnergyJ is the energy consumed by the policy-controlled links.
	EnergyJ float64 `json:"energy_j"`
	// OracleEnergyJ is the offline-optimal lower bound on EnergyJ computed
	// from a recorded trace (absent when no oracle ran).
	OracleEnergyJ float64 `json:"oracle_energy_j,omitempty"`
	// RegretJ = EnergyJ − OracleEnergyJ: the energy better control could
	// have saved at most (absent when no oracle ran).
	RegretJ float64 `json:"regret_j,omitempty"`
	// RegretFrac is RegretJ / OracleEnergyJ (absent when no oracle ran).
	RegretFrac float64 `json:"regret_frac,omitempty"`
}

// SetOracle fills the regret fields from an oracle energy bound.
func (p *Policy) SetOracle(oracleJ float64) {
	p.OracleEnergyJ = oracleJ
	p.RegretJ = p.EnergyJ - oracleJ
	if oracleJ > 0 {
		p.RegretFrac = p.RegretJ / oracleJ
	}
}

// Recovery aggregates the fault-aware routing and stall-watchdog counters
// of a run: how traffic was steered around hard link failures and what the
// last-resort escalations cost.
type Recovery struct {
	// Reroutes counts routing decisions where liveness filtering excluded
	// at least one minimal candidate — the packet was steered around a
	// dead link while staying minimal.
	Reroutes int64 `json:"reroutes"`
	// Misroutes counts non-minimal hops taken because every minimal
	// candidate was dead (bounded per packet by MaxMisroutes).
	Misroutes int64 `json:"misroutes"`
	// EscapeGrants counts flits granted onto escape virtual channels.
	EscapeGrants int64 `json:"escape_grants"`
	// WatchdogReroutes counts head-of-line packets the stall watchdog
	// forced onto the escape network after StallHorizon.
	WatchdogReroutes int64 `json:"watchdog_reroutes"`
	// WatchdogDrops counts packets dropped after DropHorizon.
	WatchdogDrops int64 `json:"watchdog_drops"`
	// UnreachableDrops counts packets dropped at injection because no live
	// path to their destination router existed.
	UnreachableDrops int64 `json:"unreachable_drops"`
	// DiscardedFlits counts killed-packet flits discarded by routers.
	DiscardedFlits int64 `json:"discarded_flits"`
	// DroppedPackets is the drop total (watchdog + unreachable); exact
	// drain means Injected == Delivered + DroppedPackets.
	DroppedPackets int64 `json:"dropped_packets"`
	// DownMeshLinks is the number of inter-router links the liveness table
	// currently considers dead.
	DownMeshLinks int `json:"down_mesh_links"`
	// ReachRecomputes counts reachability/liveness recomputations.
	ReachRecomputes int64 `json:"reach_recomputes"`
}
