package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLatencyAggregate(t *testing.T) {
	var l Latency
	for _, v := range []sim.Cycle{10, 20, 30} {
		l.Record(v)
	}
	if l.Count != 3 || l.Min != 10 || l.Max != 30 {
		t.Errorf("aggregate %+v", l)
	}
	if l.Mean() != 20 {
		t.Errorf("mean = %g, want 20", l.Mean())
	}
}

func TestLatencyEmptyMean(t *testing.T) {
	var l Latency
	if l.Mean() != 0 {
		t.Errorf("empty mean = %g", l.Mean())
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Record(5)
	a.Record(15)
	b.Record(100)
	a.Merge(b)
	if a.Count != 3 || a.Min != 5 || a.Max != 100 {
		t.Errorf("merged %+v", a)
	}
	var empty Latency
	a.Merge(empty)
	if a.Count != 3 {
		t.Error("merging empty changed the aggregate")
	}
	empty.Merge(a)
	if empty.Count != 3 || empty.Min != 5 {
		t.Errorf("merge into empty: %+v", empty)
	}
}

// TestLatencyMergeEquivalence (property): merging two halves equals
// recording everything into one aggregate.
func TestLatencyMergeEquivalence(t *testing.T) {
	f := func(xs []uint16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var whole, a, b Latency
		for i, x := range xs {
			whole.Record(sim.Cycle(x))
			if i < k {
				a.Record(sim.Cycle(x))
			} else {
				b.Record(sim.Cycle(x))
			}
		}
		a.Merge(b)
		return a == whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketed(t *testing.T) {
	b := NewBucketed(100)
	b.Add(5, 10)
	b.Add(50, 20)
	b.Add(150, 99)
	if b.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", b.Buckets())
	}
	if got := b.Mean(0); got != 15 {
		t.Errorf("bucket 0 mean = %g, want 15", got)
	}
	if got := b.Mean(1); got != 99 {
		t.Errorf("bucket 1 mean = %g, want 99", got)
	}
	if !math.IsNaN(b.Mean(5)) {
		t.Error("out-of-range bucket mean not NaN")
	}
	if b.Sum(0) != 30 || b.N(0) != 2 {
		t.Errorf("bucket 0 sum/N = %g/%d", b.Sum(0), b.N(0))
	}
	if b.Sum(9) != 0 || b.N(9) != 0 {
		t.Error("out-of-range bucket not zero")
	}
}

func TestBucketedGapsAreNaN(t *testing.T) {
	b := NewBucketed(10)
	b.Add(0, 1)
	b.Add(35, 2) // buckets 1 and 2 empty
	if !math.IsNaN(b.Mean(1)) || !math.IsNaN(b.Mean(2)) {
		t.Error("empty middle buckets should be NaN")
	}
}

func TestBucketedZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	NewBucketed(0)
}

func TestSeriesMeanMax(t *testing.T) {
	s := Series{{T: 0, V: 1}, {T: 10, V: 3}, {T: 20, V: math.NaN()}, {T: 30, V: 2}}
	if got := s.MeanV(); got != 2 {
		t.Errorf("MeanV = %g, want 2 (NaN skipped)", got)
	}
	if got := s.MaxV(); got != 3 {
		t.Errorf("MaxV = %g, want 3", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if !math.IsNaN(s.MeanV()) || !math.IsNaN(s.MaxV()) {
		t.Error("empty series should yield NaN")
	}
	allNaN := Series{{V: math.NaN()}}
	if !math.IsNaN(allNaN.MeanV()) {
		t.Error("all-NaN series should yield NaN")
	}
}

func TestPowerLatencyProduct(t *testing.T) {
	if got := PowerLatencyProduct(0.25, 1.5); got != 0.375 {
		t.Errorf("PLP = %g, want 0.375", got)
	}
}
