package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Chrome trace_event export: every time series becomes a counter track
// ("ph":"C" — one track per link/router metric, named by the series), and
// every flight-recorder event becomes a global instant event ("ph":"i").
// The resulting JSON loads directly in chrome://tracing and Perfetto.
//
// Timestamps are microseconds of simulated time (1 cycle = 1.6 ns), so a
// 1M-cycle run spans 1.6 ms of trace time.

// traceEvent is one entry of the Chrome trace_event format. Only the
// fields the counter/instant/metadata phases need are modelled.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object Chrome/Perfetto accept.
//
//optolint:allow jsontags camelCase keys are mandated by the Chrome trace_event schema
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tsMicros converts a cycle to trace microseconds.
func tsMicros(c sim.Cycle) float64 { return c.Micros() }

// counterPID is the process id grouping all counter tracks; eventPID
// groups the flight-recorder instants.
const (
	counterPID = 1
	eventPID   = 2
)

// WriteChromeTrace renders the registry's series and flight recorder as
// Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, r *Registry) error {
	var tf traceFile
	tf.DisplayTimeUnit = "ms"
	tf.OtherData = map[string]any{
		"source":            "optosim telemetry",
		"cycle_ns":          1.6,
		"sample_every":      int64(r.cfg.SampleEvery),
		"samples":           r.samples,
		"dropped_events":    r.flight.Dropped(),
		"flight_retained":   r.flight.Len(),
		"series_ring_cap":   r.cfg.RingCap,
		"series_registered": len(r.series),
	}
	tf.TraceEvents = append(tf.TraceEvents,
		traceEvent{Name: "process_name", Phase: "M", PID: counterPID,
			Args: map[string]any{"name": "probes"}},
		traceEvent{Name: "process_name", Phase: "M", PID: eventPID,
			Args: map[string]any{"name": "flight recorder"}},
	)
	for _, s := range r.Series() {
		for _, p := range s.Points {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name:  s.Name,
				Phase: "C",
				TS:    tsMicros(p.T),
				PID:   counterPID,
				Args:  map[string]any{"value": p.V},
			})
		}
	}
	for _, e := range r.flight.Events() {
		args := map[string]any{"link": e.Link, "router": e.Router}
		if e.A != 0 {
			args["a"] = e.A
		}
		if e.B != 0 {
			args["b"] = e.B
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name:  string(e.Kind),
			Phase: "i",
			TS:    tsMicros(e.At),
			PID:   eventPID,
			TID:   1,
			Scope: "p",
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("telemetry: writing Chrome trace: %w", err)
	}
	return nil
}

// WriteCSV renders every series in long form: series,kind,cycle,value —
// one row per retained sample, series in registration order.
func WriteCSV(w io.Writer, r *Registry) error {
	if _, err := fmt.Fprintln(w, "series,kind,cycle,value"); err != nil {
		return err
	}
	for _, s := range r.Series() {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g\n", s.Name, s.Kind, int64(p.T), p.V); err != nil {
				return err
			}
		}
	}
	return nil
}
