package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/atomicio"
	"repro/internal/sim"
)

// EventKind names a class of discrete flight-recorder event.
type EventKind string

const (
	// EventLevelUp / EventLevelDown: a link completed a bit-rate level
	// transition (A = old level, B = new level).
	EventLevelUp   EventKind = "level_up"
	EventLevelDown EventKind = "level_down"
	// EventRelockFail: a fault-injected CDR relock failure extended a
	// frequency switch's disable window (A = consecutive retry count).
	EventRelockFail EventKind = "relock_fail"
	// EventLinkDown / EventLinkUp: a link entered or left hard-down state
	// (scheduled failure window or escalated reset).
	EventLinkDown EventKind = "link_down"
	EventLinkUp   EventKind = "link_up"
	// EventLinkReset: a retransmit-watchdog escalation reset a link
	// (B = the cycle the reset expires).
	EventLinkReset EventKind = "link_reset"
	// EventWatchdogReroute: the stall watchdog forced a head-of-line packet
	// onto the escape network at the given router.
	EventWatchdogReroute EventKind = "watchdog_reroute"
	// EventWatchdogKill: the stall watchdog dropped a packet past the drop
	// horizon at the given router.
	EventWatchdogKill EventKind = "watchdog_kill"
	// EventAuditFail: a conservation audit failed.
	EventAuditFail EventKind = "audit_fail"
)

// Event is one discrete occurrence worth keeping for a post-mortem.
type Event struct {
	// At is the cycle the event logically happened (which, for lazily
	// evaluated sources, can precede the cycle it was recorded).
	At sim.Cycle `json:"at"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Link is the global link index the event concerns (-1 when not
	// link-scoped).
	Link int `json:"link"`
	// Router is the router the event concerns (-1 when not router-scoped).
	Router int `json:"router"`
	// A and B carry kind-specific detail (levels, retry counts, deadlines).
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// FlightRecorder is a bounded ring of the most recent discrete events.
type FlightRecorder struct {
	ev      []Event
	head    int // index of the oldest retained event
	n       int
	dropped int64
}

// NewFlightRecorder returns a recorder retaining at most cap events.
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = 1
	}
	return &FlightRecorder{ev: make([]Event, cap)}
}

// Record appends e, evicting the oldest event when full.
func (f *FlightRecorder) Record(e Event) {
	if f.n == len(f.ev) {
		f.ev[f.head] = e
		f.head = (f.head + 1) % len(f.ev)
		f.dropped++
		return
	}
	f.ev[(f.head+f.n)%len(f.ev)] = e
	f.n++
}

// Len returns the number of retained events.
func (f *FlightRecorder) Len() int { return f.n }

// Dropped returns how many events were evicted to make room.
func (f *FlightRecorder) Dropped() int64 { return f.dropped }

// Events returns the retained events sorted by cycle (stable: same-cycle
// events keep recording order).
func (f *FlightRecorder) Events() []Event {
	out := make([]Event, 0, f.n)
	for i := 0; i < f.n; i++ {
		out = append(out, f.ev[(f.head+i)%len(f.ev)])
	}
	sortEventsByTime(out)
	return out
}

// flightDump is the JSON shape of a flight-recorder dump.
type flightDump struct {
	Reason  string  `json:"reason"`
	At      int64   `json:"at"`
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// DumpFlight writes the flight recorder as indented JSON: the dump taken at
// cycle at for the given reason. Used both by the automatic trigger path
// and by CLIs/examples that want the timeline at end of run.
func (r *Registry) DumpFlight(w io.Writer, at sim.Cycle, reason string) error {
	d := flightDump{
		Reason:  reason,
		At:      int64(at),
		Dropped: r.flight.Dropped(),
		Events:  r.flight.Events(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("telemetry: dumping flight recorder: %w", err)
	}
	return nil
}

// ParseFlightDump is the inverse of DumpFlight (for tests and tooling).
func ParseFlightDump(b []byte) (reason string, at sim.Cycle, events []Event, err error) {
	var d flightDump
	if err := json.Unmarshal(b, &d); err != nil {
		return "", 0, nil, fmt.Errorf("telemetry: parsing flight dump: %w", err)
	}
	return d.Reason, sim.Cycle(d.At), d.Events, nil
}

// createFile opens path for an atomic write (staged in a temp file,
// renamed into place on Close); split out so the automatic dump path is
// the only place telemetry touches the filesystem. Atomicity matters here:
// dumps fire at the exact moments — escalations, kills — when the process
// is likeliest to die mid-write, and a torn dump would defeat its purpose.
func createFile(path string) (io.WriteCloser, error) { return atomicio.Create(path) }
