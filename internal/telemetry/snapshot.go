package telemetry

import (
	"fmt"

	"repro/internal/stats"
)

// FlightState is the serializable form of a FlightRecorder: the retained
// events in raw ring order (oldest first, *not* time-sorted — Events()
// sorts on read, and the raw order must survive a round trip so later
// recordings interleave identically).
type FlightState struct {
	Events  []Event
	Dropped int64
}

// ExportState captures the recorder's ring.
func (f *FlightRecorder) ExportState() FlightState {
	st := FlightState{Events: make([]Event, 0, f.n), Dropped: f.dropped}
	for i := 0; i < f.n; i++ {
		st.Events = append(st.Events, f.ev[(f.head+i)%len(f.ev)])
	}
	return st
}

// RestoreState overwrites the recorder from a snapshot. The recorder must
// have been built with a capacity of at least the snapshot's event count.
func (f *FlightRecorder) RestoreState(st FlightState) error {
	if len(st.Events) > len(f.ev) {
		return fmt.Errorf("telemetry: snapshot holds %d events, recorder capacity is %d", len(st.Events), len(f.ev))
	}
	for i := range f.ev {
		f.ev[i] = Event{}
	}
	f.head = 0
	f.n = len(st.Events)
	copy(f.ev, st.Events)
	f.dropped = st.Dropped
	return nil
}

// SeriesState is one instrument's sample ring and stride clock.
type SeriesState struct {
	Name   string
	Points []stats.Point
	Stride int
	Tick   int64
}

// HistogramState is one named histogram's buckets.
type HistogramState struct {
	Name string
	Hist stats.HistogramState
}

// RegistryState is the registry's complete mutable state. Instruments and
// markers themselves are re-registered during network construction in a
// deterministic order; only their dynamic state travels.
type RegistryState struct {
	Series []SeriesState
	Hists  []HistogramState
	Flight FlightState

	SamplerArmed bool
	Markers      int // registered marker count, shape check only
	Pending      int
	Samples      int64

	Dumped     bool
	Dumps      int
	Suppressed int64
}

// ExportState captures the registry's mutable state in registration order.
func (r *Registry) ExportState() RegistryState {
	st := RegistryState{
		Flight:       r.flight.ExportState(),
		SamplerArmed: r.samplerArmed,
		Markers:      len(r.markers),
		Pending:      r.pending,
		Samples:      r.samples,
		Dumped:       r.dumped,
		Dumps:        r.dumps,
		Suppressed:   r.suppressed,
	}
	for _, s := range r.series {
		pts := make([]stats.Point, len(s.pts))
		copy(pts, s.pts)
		st.Series = append(st.Series, SeriesState{Name: s.name, Points: pts, Stride: s.stride, Tick: s.tick})
	}
	for _, name := range r.horder {
		st.Hists = append(st.Hists, HistogramState{Name: name, Hist: r.hists[name].ExportState()})
	}
	return st
}

// RestoreState overwrites the registry's mutable state. Every snapshot
// series and histogram must already be registered (the restore target is a
// freshly constructed network with identical telemetry wiring).
func (r *Registry) RestoreState(st RegistryState) error {
	if st.Markers != len(r.markers) {
		return fmt.Errorf("telemetry: snapshot has %d markers, registry has %d", st.Markers, len(r.markers))
	}
	for _, ss := range st.Series {
		s, ok := r.byName[ss.Name]
		if !ok {
			return fmt.Errorf("telemetry: snapshot series %q not registered", ss.Name)
		}
		if len(ss.Points) > s.cap {
			return fmt.Errorf("telemetry: snapshot series %q holds %d points, capacity is %d", ss.Name, len(ss.Points), s.cap)
		}
		if ss.Stride < 1 {
			return fmt.Errorf("telemetry: snapshot series %q has stride %d", ss.Name, ss.Stride)
		}
		s.pts = append(s.pts[:0], ss.Points...)
		s.stride = ss.Stride
		s.tick = ss.Tick
	}
	for _, hs := range st.Hists {
		h, ok := r.hists[hs.Name]
		if !ok {
			return fmt.Errorf("telemetry: snapshot histogram %q not registered", hs.Name)
		}
		h.RestoreState(hs.Hist)
	}
	if err := r.flight.RestoreState(st.Flight); err != nil {
		return err
	}
	r.samplerArmed = st.SamplerArmed
	r.pending = st.Pending
	r.samples = st.Samples
	r.dumped = st.Dumped
	r.dumps = st.Dumps
	r.suppressed = st.Suppressed
	return nil
}
