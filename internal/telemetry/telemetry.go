// Package telemetry is the simulator's observability subsystem: a registry
// of typed time-series probes (counters, gauges, streaming histograms)
// sampled by a timing-wheel event, plus a bounded flight recorder of recent
// discrete events (level transitions, relock failures, link down/up,
// watchdog escalations) that can be dumped as JSON when something goes
// wrong mid-run.
//
// Design constraints, in order:
//
//  1. Determinism. Sampling runs as a sim.Wheel event, so it fires at
//     exactly the same cycles whether or not the surrounding simulator
//     fast-forwards over idle gaps — the event is visible to
//     Wheel.NextEventAt, which bounds every skip. Probes only *read*
//     simulator state (the lazily-advanced link state machines advance to
//     the same observation points either way), so enabling telemetry
//     never changes a result, and an enabled run is bit-identical between
//     fast-forwarded and cycle-by-cycle execution.
//  2. Bounded memory. Every series lives in a fixed-capacity ring: when it
//     fills, it compacts in place (every other point is dropped and the
//     sampling stride doubles), so a series always spans the whole run at
//     the finest resolution its capacity allows.
//  3. Low overhead. Disabled telemetry wires nothing — no hooks, no wheel
//     events, no allocations; the simulator is byte-identical to a build
//     without this package. Enabled at the default sampling period, the
//     per-sample work is a few thousand field reads.
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterises the telemetry subsystem. The zero value disables it
// entirely.
type Config struct {
	// Enabled switches the subsystem on.
	Enabled bool
	// SampleEvery is the probe sampling period in cycles (default 1024).
	// Sampling is a wheel event, so it also bounds how far the simulator's
	// event-driven fast-forward may skip while telemetry is enabled.
	SampleEvery sim.Cycle
	// RingCap is the per-series point capacity (default 512). A full ring
	// compacts: every other point is dropped and the series' stride
	// doubles, preserving whole-run coverage at halved resolution.
	RingCap int
	// FlightCap bounds the flight recorder's event ring (default 512);
	// older events are evicted and counted as dropped.
	FlightCap int
	// FlightDumpPath, when non-empty, is the file the flight recorder dumps
	// to (as JSON) on the first watchdog escalation, drop-horizon kill, or
	// audit failure. Tests and examples can use SetDumpWriter instead.
	FlightDumpPath string
}

// WithDefaults returns c with zero knobs replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1024
	}
	if c.RingCap <= 0 {
		c.RingCap = 512
	}
	if c.FlightCap <= 0 {
		c.FlightCap = 512
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	c = c.WithDefaults()
	if c.RingCap < 2 {
		return fmt.Errorf("telemetry: RingCap must be at least 2, got %d", c.RingCap)
	}
	return nil
}

// GaugeFunc reads one instantaneous value at the given cycle.
type GaugeFunc func(now sim.Cycle) float64

// CounterFunc reads one monotonically non-decreasing cumulative value.
type CounterFunc func() int64

// SeriesKind distinguishes instrument types in exports.
type SeriesKind string

const (
	KindGauge   SeriesKind = "gauge"
	KindCounter SeriesKind = "counter"
)

// series is one registered instrument and its sample ring.
type series struct {
	name  string
	kind  SeriesKind
	gauge GaugeFunc
	count CounterFunc

	pts []stats.Point
	//optolint:derived fixed ring capacity assigned at registration; restore validates against it
	cap    int
	stride int   // record every stride-th sample tick
	tick   int64 // sample ticks seen since registration
}

// sample records the instrument's current value if this tick lands on the
// series' stride grid, compacting the ring when it fills.
func (s *series) sample(now sim.Cycle) {
	t := s.tick
	s.tick++
	if t%int64(s.stride) != 0 {
		return
	}
	var v float64
	if s.kind == KindCounter {
		v = float64(s.count())
	} else {
		v = s.gauge(now)
	}
	if len(s.pts) == s.cap {
		// Compact: keep even-indexed points (which sit on the doubled
		// stride grid) and halve the occupancy.
		keep := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			keep = append(keep, s.pts[i])
		}
		s.pts = keep
		s.stride *= 2
		if t%int64(s.stride) != 0 {
			return // this tick fell off the coarsened grid
		}
	}
	s.pts = append(s.pts, stats.Point{T: now, V: v})
}

// Series is a read-only snapshot of one instrument's time series.
type Series struct {
	Name   string
	Kind   SeriesKind
	Stride int // sampling stride in ticks (1 = every SampleEvery cycles)
	Points stats.Series
}

// Registry owns every registered instrument, the flight recorder, and the
// sampling wheel event.
type Registry struct {
	cfg   Config
	wheel *sim.Wheel

	//optolint:derived registration list rebuilt by construction; restore resolves series via byName
	series []*series
	//optolint:derived name index built at registration; the export side iterates series instead
	byName map[string]*series
	hists  map[string]*stats.Histogram
	//optolint:derived histogram registration order rebuilt by construction; restore resolves via hists
	horder []string

	flight *FlightRecorder

	samplerArmed bool
	sampleEvt    sim.Event
	samplerWrap  sim.Event // stable arm() wrapper, resolvable on restore

	// markers retains every ScheduleMarker wrapper in registration order;
	// the ordinal is the marker's checkpoint handler descriptor, so a
	// restored wheel can resolve marker entries back to their closures.
	// Registration order is deterministic (markers are scheduled during
	// network construction from the fault schedule).
	markers []sim.Event
	// pending counts registry-owned wheel events (the sampler plus any
	// scheduled flight-recorder markers) not yet fired. The network's
	// quiescence check subtracts it: telemetry only observes, so its
	// events must not keep a drained network "busy".
	pending int

	samples int64

	//optolint:derived host-process dump sink, not simulated state
	dumpW      io.Writer
	dumped     bool
	dumps      int
	suppressed int64
}

// NewRegistry builds a registry sampling on wheel w. Call Start to arm the
// sampler.
func NewRegistry(cfg Config, w *sim.Wheel) *Registry {
	cfg = cfg.WithDefaults()
	r := &Registry{
		cfg:    cfg,
		wheel:  w,
		byName: make(map[string]*series),
		hists:  make(map[string]*stats.Histogram),
		flight: NewFlightRecorder(cfg.FlightCap),
	}
	r.sampleEvt = func(now sim.Cycle) {
		r.pending--
		r.sampleAll(now)
		r.arm(now)
	}
	r.samplerWrap = func(at sim.Cycle) {
		r.samplerArmed = false
		r.sampleEvt(at)
	}
	return r
}

// Config returns the registry's (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// Gauge registers a gauge instrument. Names must be unique.
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	r.add(&series{name: name, kind: KindGauge, gauge: fn})
}

// Counter registers a cumulative counter instrument.
func (r *Registry) Counter(name string, fn CounterFunc) {
	r.add(&series{name: name, kind: KindCounter, count: fn})
}

func (r *Registry) add(s *series) {
	if _, dup := r.byName[s.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %q", s.name))
	}
	s.cap = r.cfg.RingCap
	s.stride = 1
	r.byName[s.name] = s
	r.series = append(r.series, s)
}

// Histogram registers (or returns the existing) streaming histogram under
// name. Callers record observations directly; exports snapshot quantiles.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &stats.Histogram{}
	r.hists[name] = h
	r.horder = append(r.horder, name)
	return h
}

// Start takes a baseline sample at now and arms the recurring sampler.
func (r *Registry) Start(now sim.Cycle) {
	r.sampleAll(now)
	r.arm(now)
}

func (r *Registry) arm(now sim.Cycle) {
	if r.samplerArmed {
		return
	}
	r.samplerArmed = true
	r.pending++
	r.wheel.ScheduleID(now+r.cfg.SampleEvery, sim.HandlerID(sim.HTelemSample, 0, 0), r.samplerWrap)
}

func (r *Registry) sampleAll(now sim.Cycle) {
	r.samples++
	for _, s := range r.series {
		s.sample(now)
	}
}

// Samples returns how many sampling rounds have run (including the Start
// baseline).
func (r *Registry) Samples() int64 { return r.samples }

// PendingEvents returns the number of registry-owned wheel events currently
// scheduled. Quiescence checks subtract this from the wheel's pending
// count: telemetry never mutates simulator state, so its events must not
// count as outstanding work.
func (r *Registry) PendingEvents() int { return r.pending }

// ScheduleMarker schedules fn on the wheel with the registry's pending
// accounting — used for flight-recorder markers at known future times
// (e.g. scheduled fault windows).
func (r *Registry) ScheduleMarker(at sim.Cycle, fn sim.Event) {
	r.pending++
	wrap := func(now sim.Cycle) {
		r.pending--
		fn(now)
	}
	ordinal := uint32(len(r.markers))
	r.markers = append(r.markers, wrap)
	r.wheel.ScheduleID(at, sim.HandlerID(sim.HTelemMarker, ordinal, 0), wrap)
}

// ResolveHandler maps a checkpoint handler descriptor owned by the registry
// (sampler tick, scheduled marker) back to its event closure. Marker
// ordinals refer to registration order, which is deterministic per
// configuration.
func (r *Registry) ResolveHandler(id uint64) (sim.Event, bool) {
	switch sim.HandlerKind(id) {
	case sim.HTelemSample:
		return r.samplerWrap, true
	case sim.HTelemMarker:
		if ord := int(sim.HandlerObj(id)); ord < len(r.markers) {
			return r.markers[ord], true
		}
	}
	return nil, false
}

// Record appends a discrete event to the flight recorder.
func (r *Registry) Record(e Event) { r.flight.Record(e) }

// Flight returns the flight recorder.
func (r *Registry) Flight() *FlightRecorder { return r.flight }

// Series returns snapshots of every registered series, in registration
// order.
func (r *Registry) Series() []Series {
	out := make([]Series, 0, len(r.series))
	for _, s := range r.series {
		pts := make(stats.Series, len(s.pts))
		copy(pts, s.pts)
		out = append(out, Series{Name: s.name, Kind: s.kind, Stride: s.stride, Points: pts})
	}
	return out
}

// Lookup returns the snapshot of one series by name (ok=false when absent).
func (r *Registry) Lookup(name string) (Series, bool) {
	s, ok := r.byName[name]
	if !ok {
		return Series{}, false
	}
	pts := make(stats.Series, len(s.pts))
	copy(pts, s.pts)
	return Series{Name: s.name, Kind: s.kind, Stride: s.stride, Points: pts}, true
}

// SetDumpWriter redirects automatic flight-recorder dumps to w instead of
// Config.FlightDumpPath — for tests and examples.
func (r *Registry) SetDumpWriter(w io.Writer) { r.dumpW = w }

// openDump resolves the automatic dump destination: the explicit writer if
// set, else the configured path (nil when neither is available).
func (r *Registry) openDump() (io.Writer, func(), bool) {
	if r.dumpW != nil {
		return r.dumpW, func() {}, true
	}
	if r.cfg.FlightDumpPath == "" {
		return nil, nil, false
	}
	f, err := createFile(r.cfg.FlightDumpPath)
	if err != nil {
		return nil, nil, false
	}
	return f, func() { f.Close() }, true
}

// TriggerDump dumps the flight recorder once per run: the first watchdog
// escalation, drop-horizon kill, or audit failure produces the post-mortem;
// later triggers are counted but suppressed (the first is the one closest
// to the root cause, and a wedged network can escalate every scan).
func (r *Registry) TriggerDump(at sim.Cycle, reason string) {
	if r.dumped {
		r.suppressed++
		return
	}
	r.dumped = true
	w, done, ok := r.openDump()
	if !ok {
		return
	}
	defer done()
	if err := r.DumpFlight(w, at, reason); err == nil {
		r.dumps++
	}
}

// Dumps returns how many automatic dumps were written, and how many
// triggers were suppressed after the first.
func (r *Registry) Dumps() (written int, suppressed int64) {
	return r.dumps, r.suppressed
}

// Digest is the compact machine-readable summary of a telemetry-enabled
// run, embedded in report.Summary.
type Digest struct {
	// Samples is the number of sampling rounds taken.
	Samples int64 `json:"samples"`
	// SeriesCount is the number of registered time series.
	SeriesCount int `json:"series"`
	// SampleEvery is the sampling period in cycles.
	SampleEvery int64 `json:"sample_every"`
	// Events is the number of flight-recorder events retained.
	Events int `json:"events"`
	// DroppedEvents counts flight-recorder evictions.
	DroppedEvents int64 `json:"dropped_events"`
	// Dumps counts automatic flight-recorder dumps written.
	Dumps int `json:"dumps"`
	// LatencyP50/P95/P99 are quantiles of the "packet_latency" histogram
	// in cycles (zero when the histogram is absent or empty).
	LatencyP50 float64 `json:"latency_p50,omitempty"`
	LatencyP95 float64 `json:"latency_p95,omitempty"`
	LatencyP99 float64 `json:"latency_p99,omitempty"`
}

// Digest summarises the registry.
func (r *Registry) Digest() Digest {
	d := Digest{
		Samples:       r.samples,
		SeriesCount:   len(r.series),
		SampleEvery:   int64(r.cfg.SampleEvery),
		Events:        r.flight.Len(),
		DroppedEvents: r.flight.Dropped(),
		Dumps:         r.dumps,
	}
	if h, ok := r.hists["packet_latency"]; ok && h.Count() > 0 {
		d.LatencyP50 = h.Quantile(0.50)
		d.LatencyP95 = h.Quantile(0.95)
		d.LatencyP99 = h.Quantile(0.99)
	}
	return d
}

// Histograms returns the registered histogram names in registration order.
func (r *Registry) Histograms() []string {
	out := make([]string, len(r.horder))
	copy(out, r.horder)
	return out
}

// sortEventsByTime orders events chronologically (stable, so same-cycle
// events keep their recording order). The flight recorder's lazy sources
// (link state machines) can report a transition a little after the cycle it
// logically happened, so the raw ring is only approximately ordered.
func sortEventsByTime(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
}
