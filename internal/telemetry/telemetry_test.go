package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// drive runs the wheel from cycle 1 through end, firing events as the
// simulator's cycle loop would.
func drive(w *sim.Wheel, end sim.Cycle) {
	for c := sim.Cycle(1); c <= end; c++ {
		w.Advance(c)
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := Config{Enabled: true}.WithDefaults()
	if c.SampleEvery != 1024 || c.RingCap != 512 || c.FlightCap != 512 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config should validate: %v", err)
	}
	if err := (Config{Enabled: true, RingCap: 1}).Validate(); err == nil {
		t.Fatal("RingCap=1 should fail validation")
	}
}

func TestWheelDrivenSampling(t *testing.T) {
	w := sim.NewWheel(64)
	cfg := Config{Enabled: true, SampleEvery: 8, RingCap: 64}
	r := NewRegistry(cfg, w)
	var reads int
	r.Gauge("g", func(now sim.Cycle) float64 { reads++; return float64(now) })
	r.Start(0)
	drive(w, 40)
	// Baseline at 0 plus samples at 8,16,24,32,40.
	if r.Samples() != 6 || reads != 6 {
		t.Fatalf("samples=%d reads=%d, want 6", r.Samples(), reads)
	}
	s, ok := r.Lookup("g")
	if !ok || len(s.Points) != 6 {
		t.Fatalf("series g: ok=%v len=%d", ok, len(s.Points))
	}
	for i, p := range s.Points {
		want := sim.Cycle(i * 8)
		if p.T != want || p.V != float64(want) {
			t.Fatalf("point %d = (%d,%g), want (%d,%d)", i, p.T, p.V, want, want)
		}
	}
	// Exactly one registry-owned event stays armed.
	if r.PendingEvents() != 1 || w.Pending() != 1 {
		t.Fatalf("pending: registry=%d wheel=%d, want 1,1", r.PendingEvents(), w.Pending())
	}
}

func TestRingCompactionDoublesStride(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true, SampleEvery: 4, RingCap: 8}, w)
	r.Counter("c", func() int64 { return 0 })
	r.Start(0)
	drive(w, 4*40) // 41 sampling rounds against a ring of 8
	s, _ := r.Lookup("c")
	if s.Stride < 4 {
		t.Fatalf("stride=%d, want >=4 after repeated compaction", s.Stride)
	}
	if len(s.Points) > 8 {
		t.Fatalf("ring exceeded capacity: %d points", len(s.Points))
	}
	// Coverage must span the whole run: first point at 0, last within one
	// (coarsened) stride of the end.
	if s.Points[0].T != 0 {
		t.Fatalf("first point at %d, want 0", s.Points[0].T)
	}
	last := s.Points[len(s.Points)-1].T
	if last < sim.Cycle(4*40)-sim.Cycle(s.Stride*4) {
		t.Fatalf("last point at %d, run ended at %d (stride %d)", last, 4*40, s.Stride)
	}
	// Points must sit on the coarsened grid.
	step := sim.Cycle(s.Stride * 4)
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].T-s.Points[i-1].T != step {
			t.Fatalf("uneven grid: points %d..%d at %d,%d (step %d)",
				i-1, i, s.Points[i-1].T, s.Points[i].T, step)
		}
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r := NewRegistry(Config{Enabled: true}, sim.NewWheel(64))
	r.Gauge("x", func(sim.Cycle) float64 { return 0 })
	r.Gauge("x", func(sim.Cycle) float64 { return 0 })
}

func TestFlightRecorderRingBounds(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(Event{At: sim.Cycle(i), Kind: EventLinkDown, Link: i, Router: -1})
	}
	if f.Len() != 4 || f.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 4,6", f.Len(), f.Dropped())
	}
	ev := f.Events()
	for i, e := range ev {
		if e.Link != 6+i {
			t.Fatalf("event %d links %d, want %d (oldest evicted first)", i, e.Link, 6+i)
		}
	}
}

func TestFlightEventsSortedByLogicalTime(t *testing.T) {
	f := NewFlightRecorder(8)
	// Lazily-advanced sources record out of order; Events() must sort by At
	// but keep recording order for ties.
	f.Record(Event{At: 30, Kind: EventLevelUp, Link: 1})
	f.Record(Event{At: 10, Kind: EventLinkDown, Link: 2})
	f.Record(Event{At: 30, Kind: EventLevelDown, Link: 3})
	ev := f.Events()
	if ev[0].At != 10 || ev[1].Link != 1 || ev[2].Link != 3 {
		t.Fatalf("bad order: %+v", ev)
	}
}

func TestTriggerDumpOncePerRun(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true}, w)
	r.Record(Event{At: 5, Kind: EventWatchdogKill, Link: -1, Router: 2, A: 1})
	var buf bytes.Buffer
	r.SetDumpWriter(&buf)
	r.TriggerDump(100, "watchdog_kill")
	r.TriggerDump(200, "watchdog_kill")
	r.TriggerDump(300, "audit_fail")
	written, suppressed := r.Dumps()
	if written != 1 || suppressed != 2 {
		t.Fatalf("dumps=%d suppressed=%d, want 1,2", written, suppressed)
	}
	reason, at, events, err := ParseFlightDump(buf.Bytes())
	if err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if reason != "watchdog_kill" || at != 100 || len(events) != 1 {
		t.Fatalf("reason=%q at=%d events=%d", reason, at, len(events))
	}
	if events[0].Kind != EventWatchdogKill || events[0].Router != 2 {
		t.Fatalf("bad event round-trip: %+v", events[0])
	}
}

func TestScheduleMarkerPendingAccounting(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true, SampleEvery: 1024}, w)
	fired := sim.Cycle(0)
	r.ScheduleMarker(10, func(now sim.Cycle) { fired = now })
	if r.PendingEvents() != 1 {
		t.Fatalf("pending=%d before fire", r.PendingEvents())
	}
	drive(w, 10)
	if fired != 10 || r.PendingEvents() != 0 {
		t.Fatalf("fired=%d pending=%d", fired, r.PendingEvents())
	}
}

func TestChromeTraceExport(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true, SampleEvery: 16, RingCap: 32}, w)
	r.Gauge("link0.level", func(now sim.Cycle) float64 { return 2 })
	r.Counter("net.delivered", func() int64 { return 7 })
	r.Record(Event{At: 20, Kind: EventLinkDown, Link: 3, Router: -1})
	r.Start(0)
	drive(w, 32)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.Unit != "ms" {
		t.Fatalf("displayTimeUnit=%q", tf.Unit)
	}
	var counters, instants int
	for _, e := range tf.TraceEvents {
		switch e["ph"] {
		case "C":
			counters++
			args, ok := e["args"].(map[string]any)
			if !ok {
				t.Fatalf("counter without args: %v", e)
			}
			if _, ok := args["value"]; !ok {
				t.Fatalf("counter args missing value: %v", e)
			}
		case "i":
			instants++
			if e["name"] != "link_down" {
				t.Fatalf("instant name=%v", e["name"])
			}
			// 20 cycles × 1.6 ns = 0.032 µs.
			if ts := e["ts"].(float64); ts < 0.03 || ts > 0.035 {
				t.Fatalf("instant ts=%v, want ~0.032", ts)
			}
		}
	}
	// 3 sampling rounds (0,16,32) × 2 series.
	if counters != 6 || instants != 1 {
		t.Fatalf("counters=%d instants=%d, want 6,1", counters, instants)
	}
}

func TestCSVExport(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true, SampleEvery: 16, RingCap: 32}, w)
	r.Gauge("a", func(now sim.Cycle) float64 { return 1.5 })
	r.Start(0)
	drive(w, 16)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "series,kind,cycle,value" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 3 || lines[1] != "a,gauge,0,1.5" || lines[2] != "a,gauge,16,1.5" {
		t.Fatalf("rows: %q", lines[1:])
	}
}

func TestDigestQuantiles(t *testing.T) {
	w := sim.NewWheel(64)
	r := NewRegistry(Config{Enabled: true}, w)
	h := r.Histogram("packet_latency")
	for i := 1; i <= 100; i++ {
		h.Record(sim.Cycle(i))
	}
	d := r.Digest()
	if d.LatencyP50 <= 0 || d.LatencyP99 < d.LatencyP50 {
		t.Fatalf("bad quantiles: %+v", d)
	}
	if d.SampleEvery != 1024 {
		t.Fatalf("sample_every=%d", d.SampleEvery)
	}
	// Same name returns the same histogram.
	if r.Histogram("packet_latency") != h {
		t.Fatal("Histogram not idempotent")
	}
}

// TestSamplerBoundsFastForward checks the skip-legality contract: the armed
// sampling event is visible to NextEventAt, so an idle simulator
// fast-forwarding via SkipTo can never jump over a sample.
func TestSamplerBoundsFastForward(t *testing.T) {
	w := sim.NewWheel(4096)
	r := NewRegistry(Config{Enabled: true, SampleEvery: 1024, RingCap: 16}, w)
	r.Gauge("g", func(now sim.Cycle) float64 { return 0 })
	r.Start(0)
	next, ok := w.NextEventAt()
	if !ok || next != 1024 {
		t.Fatalf("NextEventAt=(%d,%v), want (1024,true)", next, ok)
	}
	// Fast-forward to the boundary and fire it, as the simulator core does.
	w.SkipTo(next - 1)
	w.Advance(next)
	if r.Samples() != 2 { // baseline + boundary sample
		t.Fatalf("samples=%d after skip to boundary", r.Samples())
	}
	next, ok = w.NextEventAt()
	if !ok || next != 2048 {
		t.Fatalf("sampler not re-armed: NextEventAt=(%d,%v)", next, ok)
	}
}
