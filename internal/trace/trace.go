// Package trace synthesises and stores the SPLASH-2-like traffic traces of
// Section 4.2/4.3.3. The paper drove its simulator with RSIM-captured
// traces of FFT, LU and Radix on 64 processors (8 racks), average packet
// size 48 flits. Those captures are not public, so this package generates
// deterministic traces whose injection-rate-vs-time envelopes match the
// published Fig. 7 shapes:
//
//   - FFT:   long-period phases — wide computation troughs separated by
//     high all-to-all transpose plateaus. Slow trends are easy for the
//     policy to track, which is why the paper measures only a 1.08×
//     latency penalty on FFT.
//   - LU:    medium-period alternation of factorisation compute and
//     block-broadcast communication, with the communication fraction
//     growing as the remaining matrix shrinks.
//   - Radix: rapid high-frequency bursts (the ranking/permutation phases
//     exchange keys in short intense all-to-all storms).
//
// What the power policy reacts to is exactly this envelope plus the
// destination distribution; both are reproduced, so the substitution
// preserves the power/latency behaviour the paper evaluates (see
// DESIGN.md, "Substitutions").
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// Benchmark identifies one synthesised SPLASH-2-like workload.
type Benchmark int

const (
	// FFT is the fast Fourier transform kernel.
	FFT Benchmark = iota
	// LU is the blocked dense-matrix LU decomposition kernel.
	LU
	// Radix is the integer radix sort kernel.
	Radix
)

func (b Benchmark) String() string {
	switch b {
	case FFT:
		return "fft"
	case LU:
		return "lu"
	case Radix:
		return "radix"
	default:
		return fmt.Sprintf("Benchmark(%d)", int(b))
	}
}

// Benchmarks lists all synthesised workloads in paper order.
func Benchmarks() []Benchmark { return []Benchmark{FFT, LU, Radix} }

// PacketFlits is the paper's average SPLASH packet size.
const PacketFlits = 48

// DefaultLength is the snapshot length simulated per benchmark, matching
// the ~0.4-2.0 M-cycle windows of Fig. 7.
const DefaultLength sim.Cycle = 1_200_000

// SpacingFunc gives a node's mean inter-packet spacing in cycles at time
// t; 0 or negative means the node is idle. Parallel-program traffic is
// bursty at the node level: when a node communicates it streams packets
// back to back (a cache-miss/transpose storm), and between phases it is
// nearly silent. This node-level structure is what lets the policy ride
// links up to full rate while packets actually flow — the paper's
// explanation for FFT's tiny latency penalty.
type SpacingFunc func(node int, t sim.Cycle) float64

// Spacing returns benchmark b's per-node activity pattern for a system of
// `nodes` nodes.
func Spacing(b Benchmark, nodes int) SpacingFunc {
	switch b {
	case FFT:
		// Long periods (400k cycles): a wide computation trough, then a
		// long all-to-all transpose in which groups of nodes (one node per
		// rack at a time) take turns communicating. Activity changes every
		// ~35k cycles — far slower than the policy's reaction time, so the
		// policy tracks FFT well; the paper measures its smallest latency
		// penalty here.
		const period = 400_000
		const troughFrac = 0.3
		const groups = 8
		return func(node int, t sim.Cycle) float64 {
			x := float64(t%period) / float64(period)
			if x < troughFrac {
				return 60_000 // sparse background misses
			}
			span := (1 - troughFrac) / float64(groups)
			active := int((x - troughFrac) / span)
			if active >= groups {
				active = groups - 1
			}
			if node%groups == active {
				return 350 // transpose stream
			}
			return 120_000
		}
	case LU:
		// Medium periods (50k cycles): each factorisation step has a
		// block-broadcast phase in which a rotating quarter of the nodes
		// exchanges blocks, then a compute phase. Phases are a few policy
		// windows long, so the policy tracks LU only partially — the
		// paper's intermediate penalty.
		const period = 50_000
		return func(node int, t sim.Cycle) float64 {
			step := int(t / period)
			x := float64(t%period) / period
			if x < 0.38 && (node+step)%4 == 0 {
				return 450
			}
			return 14_000
		}
	case Radix:
		// Short periods (12k cycles): sharp key-exchange storms in which
		// every node participates briefly, every fourth storm (the rank
		// permutation) longer. Storms are shorter than the policy's
		// reaction ladder, so links rarely match demand before the storm
		// ends — the paper's largest penalty.
		const period = 12_000
		return func(node int, t sim.Cycle) float64 {
			x := float64(t%period) / period
			burst := 0.30
			if (t/period)%4 == 3 {
				burst = 0.45
			}
			if x < burst {
				return 1_300
			}
			return 26_000
		}
	default:
		panic(fmt.Sprintf("trace: unknown benchmark %d", int(b)))
	}
}

// Gen drives one benchmark's synthetic trace as a traffic.Generator.
type Gen struct {
	Nodes   int
	Size    int
	End     sim.Cycle
	Spacing SpacingFunc
	// Step quantises spacing evaluation (default 500 cycles).
	Step sim.Cycle
}

var _ traffic.Generator = (*Gen)(nil)

// Next implements traffic.Generator: exponential inter-arrivals at the
// node's current spacing, re-evaluated every Step cycles so phase edges
// are honoured.
func (g *Gen) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	step := g.Step
	if step <= 0 {
		step = 500
	}
	at := after
	if at < 0 {
		at = 0
	}
	for i := 0; i < 10_000_000; i++ {
		if g.End > 0 && at >= g.End {
			return 0, 0, 0, false
		}
		segEnd := (at/step + 1) * step
		spacing := g.Spacing(node, at)
		if spacing <= 0 {
			at = segEnd
			continue
		}
		p := 1 / spacing
		if p > 1 {
			p = 1
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		gap := sim.Cycle(math.Floor(math.Log(u)/math.Log(1-p))) + 1
		candidate := at + gap
		if candidate >= segEnd {
			at = segEnd
			continue
		}
		if g.End > 0 && candidate >= g.End {
			return 0, 0, 0, false
		}
		dst := rng.Intn(g.Nodes - 1)
		if dst >= node {
			dst++
		}
		return candidate, dst, g.Size, true
	}
	return 0, 0, 0, false
}

// Generator returns the traffic generator for benchmark b on a system with
// `nodes` nodes, running for length cycles (0 = DefaultLength).
func Generator(b Benchmark, nodes int, length sim.Cycle) *Gen {
	if length <= 0 {
		length = DefaultLength
	}
	return &Gen{
		Nodes:   nodes,
		Size:    PacketFlits,
		End:     length,
		Spacing: Spacing(b, nodes),
	}
}

// Record is one packet injection in a stored trace file.
type Record struct {
	At   sim.Cycle
	Src  int32
	Dst  int32
	Size int32
}

const fileMagic = "OPTOTRC1"

// Write stores records to w in the binary trace format: an 8-byte magic, a
// count, then fixed-width little-endian records.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		if err := binary.Write(bw, binary.LittleEndian, int64(r.At)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, r.Src); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, r.Dst); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads a trace file written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var count int64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", count)
	}
	recs := make([]Record, 0, count)
	for i := int64(0); i < count; i++ {
		var at int64
		var src, dst, size int32
		if err := binary.Read(br, binary.LittleEndian, &at); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &src); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &dst); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		recs = append(recs, Record{At: sim.Cycle(at), Src: src, Dst: dst, Size: size})
	}
	return recs, nil
}

// Materialise samples benchmark b into an explicit record list (for
// cmd/tracegen and for trace-file-driven playback). nodes and length as in
// Generator; seed drives the stochastic arrival draws.
func Materialise(b Benchmark, nodes int, length sim.Cycle, seed uint64) []Record {
	gen := Generator(b, nodes, length)
	master := sim.NewRNG(seed)
	var recs []Record
	for node := 0; node < nodes; node++ {
		rng := master.Fork()
		after := sim.Cycle(-1)
		for {
			at, dst, size, ok := gen.Next(node, after, rng)
			if !ok {
				break
			}
			recs = append(recs, Record{At: at, Src: int32(node), Dst: int32(dst), Size: int32(size)})
			after = at
		}
	}
	sortRecords(recs)
	return recs
}

// sortRecords orders by time then source (deterministic).
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recLess(recs[i], recs[j]) })
}

func recLess(a, b Record) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Src < b.Src
}

// Playback replays a stored trace as a traffic.Generator. Records must be
// time-sorted (as produced by Materialise/Read).
type Playback struct {
	// perNode[n] holds node n's records in time order.
	perNode [][]Record
	cursor  []int
}

// NewPlayback indexes recs (any order) for playback across `nodes` nodes.
func NewPlayback(recs []Record, nodes int) (*Playback, error) {
	p := &Playback{
		perNode: make([][]Record, nodes),
		cursor:  make([]int, nodes),
	}
	for _, r := range recs {
		if r.Src < 0 || int(r.Src) >= nodes {
			return nil, fmt.Errorf("trace: record source %d outside [0,%d)", r.Src, nodes)
		}
		if r.Dst < 0 || int(r.Dst) >= nodes || r.Dst == r.Src {
			return nil, fmt.Errorf("trace: record %v has invalid destination", r)
		}
		if r.Size <= 0 {
			return nil, fmt.Errorf("trace: record %v has non-positive size", r)
		}
		p.perNode[r.Src] = append(p.perNode[r.Src], r)
	}
	for n := range p.perNode {
		rs := p.perNode[n]
		for i := 1; i < len(rs); i++ {
			if rs[i].At < rs[i-1].At {
				sortRecords(rs)
				break
			}
		}
	}
	return p, nil
}

// Next implements traffic.Generator. Multiple records at the same cycle
// from one source are preserved: the later ones are nudged forward one
// cycle at a time to satisfy the strictly-after contract.
func (p *Playback) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	rs := p.perNode[node]
	i := p.cursor[node]
	if i >= len(rs) {
		return 0, 0, 0, false
	}
	p.cursor[node] = i + 1
	r := rs[i]
	at := r.At
	if at <= after {
		at = after + 1
	}
	return at, int(r.Dst), int(r.Size), true
}
