package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBenchmarkStrings(t *testing.T) {
	want := map[Benchmark]string{FFT: "fft", LU: "lu", Radix: "radix"}
	for b, w := range want {
		if b.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), w)
		}
	}
	if len(Benchmarks()) != 3 {
		t.Errorf("Benchmarks() has %d entries, want 3", len(Benchmarks()))
	}
}

func TestSpacingAlwaysPositiveOrIdle(t *testing.T) {
	for _, b := range Benchmarks() {
		sp := Spacing(b, 64)
		for node := 0; node < 64; node += 7 {
			for tt := sim.Cycle(0); tt < 500_000; tt += 777 {
				s := sp(node, tt)
				if s < 0 {
					t.Fatalf("%v spacing(%d,%d) = %g < 0", b, node, tt, s)
				}
			}
		}
	}
}

// TestSpacingTemporalVariance: every benchmark must show the paper's
// temporal variance — the per-node rate must differ by at least 10×
// between its most and least active instants.
func TestSpacingTemporalVariance(t *testing.T) {
	for _, b := range Benchmarks() {
		sp := Spacing(b, 64)
		min, max := math.Inf(1), 0.0
		for node := 0; node < 64; node++ {
			for tt := sim.Cycle(0); tt < 800_000; tt += 501 {
				s := sp(node, tt)
				if s <= 0 {
					continue
				}
				min = math.Min(min, s)
				max = math.Max(max, s)
			}
		}
		if max/min < 10 {
			t.Errorf("%v spacing varies only %.1f×, want ≥10× (temporal variance)", b, max/min)
		}
	}
}

// TestFFTPhasesLongerThanRadix verifies the defining property the paper
// leans on: FFT's activity phases are much longer than Radix's, making FFT
// easier for the policy to track.
func TestFFTPhasesLongerThanRadix(t *testing.T) {
	phaseLen := func(b Benchmark) sim.Cycle {
		sp := Spacing(b, 64)
		// Measure node 0's longest contiguous run of identical spacing.
		var best, cur sim.Cycle
		prev := sp(0, 0)
		for tt := sim.Cycle(1); tt < 1_000_000; tt++ {
			s := sp(0, tt)
			if s == prev {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 0
				prev = s
			}
		}
		return best
	}
	fft, radix := phaseLen(FFT), phaseLen(Radix)
	if fft < 10*radix {
		t.Errorf("FFT longest phase %d not ≫ Radix %d", fft, radix)
	}
}

func TestGeneratorProducesPackets(t *testing.T) {
	for _, b := range Benchmarks() {
		g := Generator(b, 64, 200_000)
		rng := sim.NewRNG(1)
		count := 0
		for node := 0; node < 64; node++ {
			at := sim.Cycle(-1)
			for {
				next, dst, size, ok := g.Next(node, at, rng)
				if !ok {
					break
				}
				if next >= 200_000 {
					t.Fatalf("%v: packet at %d past End", b, next)
				}
				if dst == node || dst < 0 || dst >= 64 {
					t.Fatalf("%v: bad destination %d", b, dst)
				}
				if size != PacketFlits {
					t.Fatalf("%v: size %d, want %d", b, size, PacketFlits)
				}
				at = next
				count++
			}
		}
		if count < 100 {
			t.Errorf("%v generated only %d packets in 200k cycles", b, count)
		}
	}
}

func TestMaterialiseSortedAndDeterministic(t *testing.T) {
	a := Materialise(LU, 64, 100_000, 7)
	b := Materialise(LU, 64, 100_000, 7)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("trace not time-sorted at %d", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := Materialise(Radix, 16, 30_000, 3)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace file")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated: valid magic + count, missing records.
	var buf bytes.Buffer
	if err := Write(&buf, Materialise(FFT, 8, 20_000, 1)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d records from empty trace", len(got))
	}
}

func TestPlaybackPreservesRecords(t *testing.T) {
	recs := Materialise(LU, 16, 50_000, 5)
	pb, err := NewPlayback(recs, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	replayed := 0
	for node := 0; node < 16; node++ {
		at := sim.Cycle(-1)
		for {
			next, dst, size, ok := pb.Next(node, at, rng)
			if !ok {
				break
			}
			if next <= at {
				t.Fatalf("node %d: non-increasing time %d after %d", node, next, at)
			}
			if dst == node {
				t.Fatalf("self destination in playback")
			}
			if size != PacketFlits {
				t.Fatalf("size %d", size)
			}
			at = next
			replayed++
		}
	}
	if replayed != len(recs) {
		t.Errorf("replayed %d of %d records", replayed, len(recs))
	}
}

func TestPlaybackSameCycleBurst(t *testing.T) {
	recs := []Record{
		{At: 100, Src: 0, Dst: 1, Size: 4},
		{At: 100, Src: 0, Dst: 2, Size: 4},
		{At: 100, Src: 0, Dst: 3, Size: 4},
	}
	pb, err := NewPlayback(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	at := sim.Cycle(-1)
	var times []sim.Cycle
	for {
		next, _, _, ok := pb.Next(0, at, rng)
		if !ok {
			break
		}
		times = append(times, next)
		at = next
	}
	if len(times) != 3 {
		t.Fatalf("burst lost records: got %d of 3", len(times))
	}
	want := []sim.Cycle{100, 101, 102}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("burst times %v, want %v", times, want)
		}
	}
}

func TestPlaybackRejectsBadRecords(t *testing.T) {
	bad := [][]Record{
		{{At: 1, Src: -1, Dst: 0, Size: 1}},
		{{At: 1, Src: 20, Dst: 0, Size: 1}},
		{{At: 1, Src: 0, Dst: 0, Size: 1}},  // self
		{{At: 1, Src: 0, Dst: 99, Size: 1}}, // out of range
		{{At: 1, Src: 0, Dst: 1, Size: 0}},  // empty packet
	}
	for i, recs := range bad {
		if _, err := NewPlayback(recs, 8); err == nil {
			t.Errorf("bad record set %d accepted", i)
		}
	}
}

func TestPlaybackSortsUnsortedInput(t *testing.T) {
	recs := []Record{
		{At: 300, Src: 0, Dst: 1, Size: 1},
		{At: 100, Src: 0, Dst: 2, Size: 1},
		{At: 200, Src: 0, Dst: 3, Size: 1},
	}
	pb, err := NewPlayback(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	at, dst, _, ok := pb.Next(0, -1, rng)
	if !ok || at != 100 || dst != 2 {
		t.Errorf("first replayed record (%d,%d), want (100,2)", at, dst)
	}
}

// TestSortRecordsProperty: quicksort must order any permutation.
func TestSortRecordsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		r := sim.NewRNG(seed)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{At: sim.Cycle(r.Intn(50)), Src: int32(r.Intn(10)), Dst: 1, Size: 1}
		}
		sortRecords(recs)
		for i := 1; i < n; i++ {
			if recLess(recs[i], recs[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultLengthGenerator(t *testing.T) {
	g := Generator(FFT, 64, 0)
	if g.End != DefaultLength {
		t.Errorf("default length = %d, want %d", g.End, DefaultLength)
	}
}
