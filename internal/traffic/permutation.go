package traffic

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Pattern maps a source node to its fixed destination in a permutation
// workload. Permutation traffic concentrates each source's load onto one
// path, producing the spatially skewed link utilisation that power-aware
// policies exploit best (idle regions can sleep at the bottom level while
// the used paths ride high).
type Pattern func(node, nodes int) int

// Transpose is the matrix-transpose permutation: with node ids viewed as
// (row, col) on a √N × √N grid, (r, c) sends to (c, r). Nodes beyond the
// largest square (when N is not a perfect square) are fixed points and
// stay silent.
func Transpose(node, nodes int) int {
	side := intSqrt(nodes)
	if node >= side*side {
		return node
	}
	r, c := node/side, node%side
	return c*side + r
}

// BitComplement sends node i to ^i (within the id width): the classic
// worst case for dimension-order routing, loading the bisection heavily.
func BitComplement(node, nodes int) int {
	return (nodes - 1) ^ node
}

// BitReverse sends node i to the bit-reversal of i (within log2 N bits).
// With a non-power-of-two node count, ids whose reversal falls outside the
// range — or beyond the power-of-two prefix — are fixed points.
func BitReverse(node, nodes int) int {
	w := bits.Len(uint(nodes)) - 1
	if node >= 1<<w {
		return node
	}
	rev := int(bits.Reverse(uint(node)) >> (bits.UintSize - w))
	if rev >= nodes {
		return node
	}
	return rev
}

// Neighbor sends node i to i+1 mod N: minimal-distance traffic that barely
// touches the mesh fabric.
func Neighbor(node, nodes int) int {
	return (node + 1) % nodes
}

func intSqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// Permutation is constant-rate traffic with a fixed source→destination
// mapping.
type Permutation struct {
	Nodes int
	// RatePerNode is the injection probability per node per cycle.
	RatePerNode float64
	Size        int
	Pattern     Pattern
}

// NewPermutation builds permutation traffic from a network-wide rate in
// packets/cycle.
func NewPermutation(nodes int, networkRate float64, size int, p Pattern) (*Permutation, error) {
	perm := &Permutation{
		Nodes:       nodes,
		RatePerNode: networkRate / float64(nodes),
		Size:        size,
		Pattern:     p,
	}
	return perm, perm.Validate()
}

// Validate checks the pattern is a self-free permutation of [0, Nodes).
func (p *Permutation) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("traffic: permutation needs >= 2 nodes")
	}
	if p.Pattern == nil {
		return fmt.Errorf("traffic: nil pattern")
	}
	seen := make([]bool, p.Nodes)
	for n := 0; n < p.Nodes; n++ {
		d := p.Pattern(n, p.Nodes)
		if d < 0 || d >= p.Nodes {
			return fmt.Errorf("traffic: pattern(%d) = %d outside [0,%d)", n, d, p.Nodes)
		}
		if seen[d] {
			return fmt.Errorf("traffic: pattern is not a permutation (duplicate destination %d)", d)
		}
		seen[d] = true
	}
	return nil
}

// Next implements Generator. Self-mapped nodes (fixed points, e.g. the
// diagonal of a transpose) inject nothing.
func (p *Permutation) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	dst := p.Pattern(node, p.Nodes)
	if dst == node || p.RatePerNode <= 0 {
		return 0, 0, 0, false
	}
	return after + geometricGap(p.RatePerNode, rng), dst, p.Size, true
}
