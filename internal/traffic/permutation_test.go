package traffic

import (
	"testing"

	"repro/internal/sim"
)

func TestTransposePattern(t *testing.T) {
	// 16 nodes = 4×4 grid: node 1 = (0,1) → (1,0) = node 4.
	if got := Transpose(1, 16); got != 4 {
		t.Errorf("Transpose(1) = %d, want 4", got)
	}
	// Diagonal fixed points map to themselves.
	if got := Transpose(5, 16); got != 5 {
		t.Errorf("Transpose(5) = %d, want 5 (diagonal)", got)
	}
	// Involution: applying twice is the identity.
	for n := 0; n < 16; n++ {
		if Transpose(Transpose(n, 16), 16) != n {
			t.Fatalf("transpose not an involution at %d", n)
		}
	}
}

func TestBitComplementPattern(t *testing.T) {
	if got := BitComplement(0, 64); got != 63 {
		t.Errorf("BitComplement(0) = %d, want 63", got)
	}
	if got := BitComplement(0b101010, 64); got != 0b010101 {
		t.Errorf("BitComplement(42) = %d, want 21", got)
	}
}

func TestBitReversePattern(t *testing.T) {
	// 8 nodes, 3 bits: 0b001 → 0b100.
	if got := BitReverse(1, 8); got != 4 {
		t.Errorf("BitReverse(1) = %d, want 4", got)
	}
	if got := BitReverse(6, 8); got != 3 {
		t.Errorf("BitReverse(6) = %d, want 3", got)
	}
}

func TestNeighborPattern(t *testing.T) {
	if Neighbor(7, 8) != 0 || Neighbor(3, 8) != 4 {
		t.Error("Neighbor wraps wrong")
	}
}

func TestPermutationValidate(t *testing.T) {
	for _, p := range []Pattern{Transpose, BitComplement, BitReverse, Neighbor} {
		if _, err := NewPermutation(64, 1, 5, p); err != nil {
			t.Errorf("valid pattern rejected: %v", err)
		}
	}
	// A non-permutation (everyone → node 0) must be rejected.
	if _, err := NewPermutation(8, 1, 5, func(n, N int) int { return 0 }); err == nil {
		t.Error("non-permutation accepted")
	}
	// Out-of-range destination.
	if _, err := NewPermutation(8, 1, 5, func(n, N int) int { return n + N }); err == nil {
		t.Error("out-of-range pattern accepted")
	}
	if _, err := NewPermutation(1, 1, 5, Neighbor); err == nil {
		t.Error("1-node permutation accepted")
	}
}

func TestPermutationFixedDestination(t *testing.T) {
	p, err := NewPermutation(64, 6.4, 5, BitComplement)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	at := sim.Cycle(-1)
	for i := 0; i < 100; i++ {
		next, dst, size, ok := p.Next(10, at, rng)
		if !ok {
			t.Fatal("generator stopped")
		}
		if dst != 53 {
			t.Fatalf("BitComplement(10) delivered to %d, want 53", dst)
		}
		if size != 5 || next <= at {
			t.Fatalf("bad packet (%d,%d)", size, next)
		}
		at = next
	}
}

func TestPermutationFixedPointsSilent(t *testing.T) {
	p, err := NewPermutation(16, 16, 5, Transpose)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	// Node 5 is on the diagonal: it must never inject.
	if _, _, _, ok := p.Next(5, -1, rng); ok {
		t.Error("diagonal node injected under transpose")
	}
}
