// Package traffic provides the workload generators of Section 4.2: uniform
// random traffic at a constant injection rate, the time-varying hot-spot
// trace, and rate-envelope-modulated traffic used to synthesise
// SPLASH-2-like workloads. Generators are pull-based: the network asks each
// source for its next injection, so generation cost is O(packets), not
// O(nodes × cycles).
package traffic

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Generator produces the injection stream of one source node.
type Generator interface {
	// Next returns the next packet injected by node strictly after cycle
	// `after`: its injection time, destination node, and size in flits.
	// ok = false means the node injects nothing further.
	Next(node int, after sim.Cycle, rng *sim.RNG) (at sim.Cycle, dst int, size int, ok bool)
}

// geometricGap draws the waiting time (>= 1 cycles) until the next success
// of a per-cycle Bernoulli(p) process.
func geometricGap(p float64, rng *sim.RNG) sim.Cycle {
	if p >= 1 {
		return 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := sim.Cycle(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// Uniform is uniform random traffic: every node injects fixed-size packets
// as a Bernoulli process and picks destinations uniformly among all other
// nodes. Its constant rate is the worst case for a power-aware policy —
// no variance means no scaling opportunity (Section 4.2).
type Uniform struct {
	// Nodes is the total node count.
	Nodes int
	// RatePerNode is the injection probability per node per cycle.
	RatePerNode float64
	// Size is the packet size in flits.
	Size int
}

// NewUniform builds uniform traffic from a network-wide injection rate in
// packets/cycle (the unit of the paper's Fig. 5 x-axes).
func NewUniform(nodes int, networkRate float64, size int) *Uniform {
	return &Uniform{Nodes: nodes, RatePerNode: networkRate / float64(nodes), Size: size}
}

// Next implements Generator.
func (u *Uniform) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	if u.RatePerNode <= 0 || u.Nodes < 2 {
		return 0, 0, 0, false
	}
	at := after + geometricGap(u.RatePerNode, rng)
	dst := rng.Intn(u.Nodes - 1)
	if dst >= node {
		dst++
	}
	return at, dst, u.Size, true
}

// Stoppable wraps an open-loop Generator with a closed-loop stop switch:
// after Stop, Next reports no further injections for every node, so the
// network's injection heap drains and Quiescent becomes reachable. Tests
// use it to assert an exact drain (injected == delivered) instead of
// bounding the in-flight tail of an endless generator.
type Stoppable struct {
	// Gen is the wrapped generator.
	Gen Generator

	stopped bool
}

// NewStoppable wraps g.
func NewStoppable(g Generator) *Stoppable { return &Stoppable{Gen: g} }

// Stop ends injection: every subsequent Next returns ok = false. Arrival
// times already handed out remain valid, so in-flight injections complete.
func (s *Stoppable) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Stoppable) Stopped() bool { return s.stopped }

// Next implements Generator.
func (s *Stoppable) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	if s.stopped {
		return 0, 0, 0, false
	}
	return s.Gen.Next(node, after, rng)
}

// Phase is one constant-rate segment of a time-varying schedule.
type Phase struct {
	// Until is the cycle at which this phase ends (exclusive).
	Until sim.Cycle
	// NetworkRate is the total injection rate in packets/cycle across all
	// nodes during the phase.
	NetworkRate float64
}

// Schedule is a piecewise-constant network-wide injection rate.
type Schedule []Phase

// RateAt returns the network rate at cycle t (0 after the last phase).
func (s Schedule) RateAt(t sim.Cycle) float64 {
	for _, p := range s {
		if t < p.Until {
			return p.NetworkRate
		}
	}
	return 0
}

// End returns the cycle at which the schedule ends.
func (s Schedule) End() sim.Cycle {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Until
}

// Validate reports malformed schedules.
func (s Schedule) Validate() error {
	var prev sim.Cycle
	for i, p := range s {
		if p.Until <= prev {
			return fmt.Errorf("traffic: phase %d ends at %d, not after %d", i, p.Until, prev)
		}
		if p.NetworkRate < 0 {
			return fmt.Errorf("traffic: phase %d has negative rate", i)
		}
		prev = p.Until
	}
	return nil
}

// Hotspot is the time-varying hot-spot workload of Section 4.2: injection
// follows a phase schedule (temporal variance) and one node attracts
// HotWeight times the traffic of any other (spatial variance; the paper
// makes node 4 of rack (3,5) accept 4× the traffic of others).
type Hotspot struct {
	Nodes     int
	Phases    Schedule
	HotNode   int
	HotWeight float64
	Size      int
}

// Next implements Generator.
func (h *Hotspot) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	if h.Nodes < 2 {
		return 0, 0, 0, false
	}
	at := after
	for {
		rate := h.Phases.RateAt(at) / float64(h.Nodes)
		if rate <= 0 {
			// Idle phase: skip to the next phase start, if any.
			next, ok := h.nextPhaseStart(at)
			if !ok {
				return 0, 0, 0, false
			}
			at = next
			continue
		}
		gap := geometricGap(rate, rng)
		candidate := at + gap
		// If the drawn arrival crosses a phase boundary, clamp to the
		// boundary and redraw with the new phase's rate.
		if boundary, ok := h.boundaryBetween(at, candidate); ok {
			at = boundary
			continue
		}
		return candidate, h.pickDst(node, rng), h.Size, true
	}
}

// nextPhaseStart returns the earliest cycle >= t inside a positive-rate
// phase. Phase i spans [phase[i-1].Until, phase[i].Until).
func (h *Hotspot) nextPhaseStart(t sim.Cycle) (sim.Cycle, bool) {
	var prev sim.Cycle
	for _, p := range h.Phases {
		if p.Until > t && p.NetworkRate > 0 {
			return maxCycle(t, prev), true
		}
		prev = p.Until
	}
	return 0, false
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

// boundaryBetween reports the first phase boundary in (from, to], if any.
// A candidate landing exactly on a boundary belongs to the next phase and
// must be redrawn at that phase's rate.
func (h *Hotspot) boundaryBetween(from, to sim.Cycle) (sim.Cycle, bool) {
	for _, p := range h.Phases {
		if p.Until > from && p.Until <= to {
			return p.Until, true
		}
	}
	return 0, false
}

// pickDst chooses a destination: HotNode carries weight HotWeight, every
// other node weight 1, and a source never sends to itself.
func (h *Hotspot) pickDst(node int, rng *sim.RNG) int {
	if node == h.HotNode {
		dst := rng.Intn(h.Nodes - 1)
		if dst >= node {
			dst++
		}
		return dst
	}
	others := h.Nodes - 2 // excluding self and the hot node
	total := h.HotWeight + float64(others)
	if rng.Float64()*total < h.HotWeight {
		return h.HotNode
	}
	dst := rng.Intn(others)
	lo, hi := node, h.HotNode
	if lo > hi {
		lo, hi = hi, lo
	}
	if dst >= lo {
		dst++
	}
	if dst >= hi {
		dst++
	}
	return dst
}

// Modulated injects uniform-destination traffic whose network-wide rate
// follows an arbitrary envelope function of time. It is the substrate for
// the synthesised SPLASH-2-like traces.
type Modulated struct {
	Nodes int
	// Rate returns the network-wide injection rate (packets/cycle) at t.
	Rate func(t sim.Cycle) float64
	// Size is the packet size in flits (paper: SPLASH average 48).
	Size int
	// End, when positive, stops injection at that cycle.
	End sim.Cycle
	// Step quantises envelope evaluation: the rate is treated as constant
	// within each Step-cycle segment (default 1000).
	Step sim.Cycle
}

// Next implements Generator.
func (m *Modulated) Next(node int, after sim.Cycle, rng *sim.RNG) (sim.Cycle, int, int, bool) {
	step := m.Step
	if step <= 0 {
		step = 1000
	}
	at := after
	for i := 0; i < 1_000_000; i++ { // bounded walk across idle segments
		if m.End > 0 && at >= m.End {
			return 0, 0, 0, false
		}
		segEnd := (at/step + 1) * step
		rate := m.Rate(at) / float64(m.Nodes)
		if rate <= 0 {
			at = segEnd
			continue
		}
		gap := geometricGap(rate, rng)
		candidate := at + gap
		if candidate >= segEnd {
			at = segEnd
			continue
		}
		if m.End > 0 && candidate >= m.End {
			return 0, 0, 0, false
		}
		dst := rng.Intn(m.Nodes - 1)
		if dst >= node {
			dst++
		}
		return candidate, dst, m.Size, true
	}
	return 0, 0, 0, false
}
