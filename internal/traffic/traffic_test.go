package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestUniformRate(t *testing.T) {
	const nodes = 64
	u := NewUniform(nodes, 3.2, 5) // 0.05 packets/node/cycle
	rng := sim.NewRNG(1)
	const horizon = 200_000
	count := 0
	at := sim.Cycle(-1)
	for {
		next, _, size, ok := u.Next(0, at, rng)
		if !ok || next >= horizon {
			break
		}
		if size != 5 {
			t.Fatalf("size %d, want 5", size)
		}
		if next <= at {
			t.Fatalf("non-increasing arrival %d after %d", next, at)
		}
		at = next
		count++
	}
	got := float64(count) / horizon
	if math.Abs(got-0.05) > 0.005 {
		t.Errorf("per-node rate %.4f, want 0.05", got)
	}
}

func TestUniformNeverSelf(t *testing.T) {
	u := NewUniform(16, 1, 5)
	rng := sim.NewRNG(2)
	for node := 0; node < 16; node++ {
		at := sim.Cycle(-1)
		for i := 0; i < 200; i++ {
			next, dst, _, ok := u.Next(node, at, rng)
			if !ok {
				t.Fatal("uniform generator stopped")
			}
			if dst == node {
				t.Fatalf("node %d sent to itself", node)
			}
			if dst < 0 || dst >= 16 {
				t.Fatalf("destination %d out of range", dst)
			}
			at = next
		}
	}
}

func TestUniformDestinationsCoverAll(t *testing.T) {
	u := NewUniform(8, 1, 1)
	rng := sim.NewRNG(3)
	seen := map[int]bool{}
	at := sim.Cycle(-1)
	for i := 0; i < 2000; i++ {
		next, dst, _, ok := u.Next(3, at, rng)
		if !ok {
			break
		}
		seen[dst] = true
		at = next
	}
	if len(seen) != 7 {
		t.Errorf("node 3 reached %d destinations, want 7", len(seen))
	}
}

func TestUniformZeroRate(t *testing.T) {
	u := &Uniform{Nodes: 8, RatePerNode: 0, Size: 5}
	if _, _, _, ok := u.Next(0, -1, sim.NewRNG(1)); ok {
		t.Error("zero-rate generator produced a packet")
	}
}

func TestScheduleRateAt(t *testing.T) {
	s := Schedule{{Until: 100, NetworkRate: 1}, {Until: 200, NetworkRate: 3}}
	cases := []struct {
		t    sim.Cycle
		want float64
	}{{0, 1}, {99, 1}, {100, 3}, {199, 3}, {200, 0}, {1000, 0}}
	for _, c := range cases {
		if got := s.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%d) = %g, want %g", c.t, got, c.want)
		}
	}
	if s.End() != 200 {
		t.Errorf("End = %d, want 200", s.End())
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{{Until: 10, NetworkRate: 1}, {Until: 20, NetworkRate: 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
	bad := []Schedule{
		{{Until: 10, NetworkRate: 1}, {Until: 10, NetworkRate: 2}}, // non-increasing
		{{Until: 10, NetworkRate: -1}},                             // negative rate
		{{Until: 0, NetworkRate: 1}},                               // zero end
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func hotspotForTest() *Hotspot {
	return &Hotspot{
		Nodes:     64,
		Phases:    Schedule{{Until: 50_000, NetworkRate: 3.2}, {Until: 100_000, NetworkRate: 0.64}},
		HotNode:   10,
		HotWeight: 4,
		Size:      5,
	}
}

func TestHotspotRateFollowsPhases(t *testing.T) {
	h := hotspotForTest()
	rng := sim.NewRNG(4)
	counts := [2]int{}
	for node := 0; node < 64; node++ {
		at := sim.Cycle(-1)
		for {
			next, _, _, ok := h.Next(node, at, rng)
			if !ok {
				break
			}
			if next < 50_000 {
				counts[0]++
			} else if next < 100_000 {
				counts[1]++
			}
			at = next
		}
	}
	// Phase 0: 3.2 pkt/cycle × 50k = 160k packets; phase 1: 0.64 × 50k = 32k.
	if math.Abs(float64(counts[0])-160_000) > 8000 {
		t.Errorf("phase-0 packets = %d, want ≈160000", counts[0])
	}
	if math.Abs(float64(counts[1])-32_000) > 4000 {
		t.Errorf("phase-1 packets = %d, want ≈32000", counts[1])
	}
}

func TestHotspotEndsAfterSchedule(t *testing.T) {
	h := hotspotForTest()
	rng := sim.NewRNG(5)
	at := sim.Cycle(99_000)
	for i := 0; i < 1000; i++ {
		next, _, _, ok := h.Next(0, at, rng)
		if !ok {
			return // correctly terminated
		}
		if next >= 100_000 {
			t.Fatalf("packet at %d, after schedule end", next)
		}
		at = next
	}
}

// TestHotspotSpatialSkew: the hot node must receive ≈4× the traffic of an
// average node.
func TestHotspotSpatialSkew(t *testing.T) {
	h := hotspotForTest()
	rng := sim.NewRNG(6)
	recv := make([]int, 64)
	for node := 0; node < 64; node++ {
		at := sim.Cycle(-1)
		for {
			next, dst, _, ok := h.Next(node, at, rng)
			if !ok {
				break
			}
			recv[dst]++
			at = next
		}
	}
	var others float64
	for n, c := range recv {
		if n != h.HotNode {
			others += float64(c)
		}
	}
	avg := others / 63
	ratio := float64(recv[h.HotNode]) / avg
	if math.Abs(ratio-4) > 0.5 {
		t.Errorf("hot node receives %.2f× average, want ≈4×", ratio)
	}
}

func TestHotspotNeverSelf(t *testing.T) {
	h := hotspotForTest()
	f := func(seed uint64, nodeRaw uint8) bool {
		node := int(nodeRaw) % h.Nodes
		rng := sim.NewRNG(seed)
		at := sim.Cycle(-1)
		for i := 0; i < 50; i++ {
			next, dst, _, ok := h.Next(node, at, rng)
			if !ok {
				return true
			}
			if dst == node || dst < 0 || dst >= h.Nodes {
				return false
			}
			at = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHotspotIdlePhaseSkipped(t *testing.T) {
	h := &Hotspot{
		Nodes: 8,
		Phases: Schedule{
			{Until: 100, NetworkRate: 8},
			{Until: 10_000, NetworkRate: 0}, // long idle gap
			{Until: 10_200, NetworkRate: 8},
		},
		HotNode: 1, HotWeight: 4, Size: 1,
	}
	rng := sim.NewRNG(7)
	at := sim.Cycle(99)
	sawLate := false
	for i := 0; i < 500; i++ {
		next, _, _, ok := h.Next(0, at, rng)
		if !ok {
			break
		}
		if next >= 100 && next < 10_000 {
			t.Fatalf("packet at %d inside idle phase", next)
		}
		if next >= 10_000 {
			sawLate = true
		}
		at = next
	}
	if !sawLate {
		t.Error("generator never resumed after the idle phase")
	}
}

func TestModulatedFollowsEnvelope(t *testing.T) {
	m := &Modulated{
		Nodes: 32,
		Rate: func(t sim.Cycle) float64 {
			if t < 50_000 {
				return 2.0
			}
			return 0.2
		},
		Size: 5,
		End:  100_000,
	}
	rng := sim.NewRNG(8)
	counts := [2]int{}
	for node := 0; node < 32; node++ {
		at := sim.Cycle(-1)
		for {
			next, _, _, ok := m.Next(node, at, rng)
			if !ok {
				break
			}
			if next >= 100_000 {
				t.Fatalf("packet at %d past End", next)
			}
			if next < 50_000 {
				counts[0]++
			} else {
				counts[1]++
			}
			at = next
		}
	}
	if math.Abs(float64(counts[0])-100_000) > 5000 {
		t.Errorf("high-phase packets = %d, want ≈100000", counts[0])
	}
	if math.Abs(float64(counts[1])-10_000) > 2000 {
		t.Errorf("low-phase packets = %d, want ≈10000", counts[1])
	}
}

func TestModulatedZeroEnvelope(t *testing.T) {
	m := &Modulated{
		Nodes: 4,
		Rate:  func(sim.Cycle) float64 { return 0 },
		Size:  5,
		End:   10_000,
	}
	if _, _, _, ok := m.Next(0, -1, sim.NewRNG(9)); ok {
		t.Error("all-zero envelope produced a packet")
	}
}

func TestGeometricGapStatistics(t *testing.T) {
	rng := sim.NewRNG(10)
	const p = 0.1
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		g := geometricGap(p, rng)
		if g < 1 {
			t.Fatalf("gap %d < 1", g)
		}
		sum += float64(g)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("geometric mean gap = %.2f, want ≈10", mean)
	}
}

func TestGeometricGapExtremeP(t *testing.T) {
	rng := sim.NewRNG(11)
	if g := geometricGap(1, rng); g != 1 {
		t.Errorf("gap at p=1 is %d, want 1", g)
	}
	if g := geometricGap(2, rng); g != 1 {
		t.Errorf("gap at p>1 is %d, want 1", g)
	}
}

// TestStoppable: a stoppable generator passes draws through until Stop,
// then reports no further injections for every node.
func TestStoppable(t *testing.T) {
	rng := sim.NewRNG(5)
	s := NewStoppable(NewUniform(16, 0.5, 4))
	if s.Stopped() {
		t.Error("fresh Stoppable reports stopped")
	}
	at, dst, size, ok := s.Next(3, 100, rng)
	if !ok || at <= 100 || dst == 3 || size != 4 {
		t.Fatalf("pass-through draw: at=%d dst=%d size=%d ok=%v", at, dst, size, ok)
	}
	s.Stop()
	if !s.Stopped() {
		t.Error("Stopped false after Stop")
	}
	for node := 0; node < 16; node++ {
		if _, _, _, ok := s.Next(node, 0, rng); ok {
			t.Fatalf("node %d still injecting after Stop", node)
		}
	}
}

// TestStoppableMatchesWrapped: before Stop, the wrapper is draw-for-draw
// identical to the bare generator.
func TestStoppableMatchesWrapped(t *testing.T) {
	bare := NewUniform(64, 0.3, 5)
	wrapped := NewStoppable(NewUniform(64, 0.3, 5))
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	var after1, after2 sim.Cycle
	for i := 0; i < 500; i++ {
		a1, d1, s1, ok1 := bare.Next(i%64, after1, r1)
		a2, d2, s2, ok2 := wrapped.Next(i%64, after2, r2)
		if a1 != a2 || d1 != d2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("draw %d diverges: (%d,%d,%d,%v) vs (%d,%d,%d,%v)", i, a1, d1, s1, ok1, a2, d2, s2, ok2)
		}
		after1, after2 = a1, a2
	}
}
